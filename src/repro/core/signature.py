"""Golden signature storage (the secure on-chip memory of the paper).

A :class:`SignatureStore` holds, for every protected layer, its
:class:`~repro.core.interleave.GroupLayout`, its secret
:class:`~repro.core.masking.SecretKey` and the golden signatures computed
from the clean weights.  The store also accounts for its own size, which is
the paper's storage-overhead metric (2 bits per group; 5.6 KB for
ResNet-18 at ``G = 512``, 8.2 KB for ResNet-20 at ``G = 8``).

The run-time side of this module is the **zero-copy scan kernel** of
:class:`FusedSignatures`: all layers fused at store-build time into one
contiguous int8 weight plane with a single global gather-index matrix and a
single int8 sign mask, so verifying any set of global rows is one int8
gather plus one narrow-accumulation ``einsum`` — no per-layer Python loop,
no ``searchsorted`` routing, no materialized product matrix, and (for
engine-adopted models) no weight copies at all.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - e.g. WASM / stripped builds
    shared_memory = None  # type: ignore[assignment]

from repro.core.checksum import (
    accumulator_dtype,
    compute_signatures,
    signature_from_sums,
    signature_shift_mask,
)
from repro.core.config import RadarConfig
from repro.core.interleave import PAD_INDEX, GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class LayerSignatures:
    """Per-layer protection state."""

    layer_name: str
    layout: GroupLayout
    key: Optional[SecretKey]
    golden: np.ndarray  # uint8, one packed signature per group

    @property
    def num_groups(self) -> int:
        return self.layout.num_groups


class SignatureStore:
    """Golden signatures for all quantized layers of one model."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self._layers: Dict[str, LayerSignatures] = {}
        self._fused: Optional["FusedSignatures"] = None

    # -- construction ---------------------------------------------------------
    def build(self, model: Module) -> "SignatureStore":
        """Compute golden signatures from the model's current (clean) weights."""
        layers = quantized_layers(model)
        if not layers:
            raise ProtectionError("Model has no quantized layers to protect")
        self._layers.clear()
        self._fused = None
        for name, layer in layers:
            if not layer.is_quantized:
                raise ProtectionError(
                    f"Layer {name!r} is not quantized; call quantize_model before protecting"
                )
            self._layers[name] = self._build_layer(name, layer.qweight)
        return self

    def _build_layer(self, name: str, qweight: np.ndarray) -> LayerSignatures:
        config = self.config
        layout = GroupLayout(
            num_weights=int(qweight.size),
            group_size=config.group_size,
            use_interleave=config.use_interleave,
            interleave_offset=config.interleave_offset,
        )
        key = (
            SecretKey.generate(config.key_bits, config.secret_seed, name)
            if config.use_masking
            else None
        )
        golden = compute_signatures(
            qweight.reshape(-1), layout, key, config.signature_bits
        )
        return LayerSignatures(layer_name=name, layout=layout, key=key, golden=golden)

    # -- access ---------------------------------------------------------------
    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._layers

    def __iter__(self) -> Iterator[LayerSignatures]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, layer_name: str) -> LayerSignatures:
        if layer_name not in self._layers:
            raise ProtectionError(f"Layer {layer_name!r} is not protected by this store")
        return self._layers[layer_name]

    def layer_names(self) -> List[str]:
        return list(self._layers)

    # -- run-time recomputation ----------------------------------------------
    def current_signatures(self, model: Module) -> Dict[str, np.ndarray]:
        """Recompute signatures from the model's current (possibly corrupted) weights."""
        layer_map = dict(quantized_layers(model))
        signatures = {}
        for name, entry in self._layers.items():
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
            signatures[name] = compute_signatures(
                layer_map[name].qweight.reshape(-1),
                entry.layout,
                entry.key,
                self.config.signature_bits,
            )
        return signatures

    def fused(self) -> "FusedSignatures":
        """Cached vectorized view over all layers (rebuilt by :meth:`build`)."""
        if self._fused is None:
            self._fused = FusedSignatures(self)
        return self._fused

    # -- storage accounting ----------------------------------------------------
    def total_groups(self) -> int:
        return sum(entry.num_groups for entry in self._layers.values())

    def storage_bits(self, include_keys: bool = False) -> int:
        """Bits of secure storage needed for the golden signatures.

        ``include_keys=True`` adds the per-layer secret keys (``N_k`` bits
        each) to the count; the paper reports signature storage only, since
        the keys are negligible (16 bits per layer).
        """
        bits = self.total_groups() * self.config.signature_bits
        if include_keys and self.config.use_masking:
            bits += len(self._layers) * self.config.key_bits
        return bits

    def storage_bytes(self, include_keys: bool = False) -> float:
        return self.storage_bits(include_keys) / 8.0

    def storage_kilobytes(self, include_keys: bool = False) -> float:
        return self.storage_bytes(include_keys) / 1024.0

    def describe(self) -> Dict[str, float]:
        """Summary used by reports."""
        return {
            "layers": len(self._layers),
            "groups": self.total_groups(),
            "signature_bits": self.config.signature_bits,
            "storage_kb": self.storage_kilobytes(),
        }


class ScanScratch:
    """Grow-only, named scratch buffers for the scan kernel.

    Every kernel pass needs the same few workspaces (gathered weights, row
    indices, sums); allocating them per pass would dominate small slices.
    A :class:`ScanScratch` hands out views of flat grow-only buffers keyed
    by ``(name, dtype)``, so steady-state passes allocate nothing.  One
    instance must not be shared across threads — the fleet engine owns one
    per batch bucket, each :class:`FusedSignatures` one for its own scans.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A C-contiguous ``shape``-d view of the named buffer (grown if needed)."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buffer = self._buffers.get((name, dtype))
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[(name, dtype)] = buffer
        return buffer[:size].reshape(shape)


#: Memoized result of :func:`shared_memory_available` (None = not probed yet).
_SHM_AVAILABLE: Optional[bool] = None

#: Monotonic counter folded into segment names so repeated publishes (and
#: generation bumps) of one process never collide.
_SEGMENT_COUNTER = itertools.count()


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` actually works here.

    Probes by creating (and immediately destroying) a one-byte segment the
    first time it is called: importability alone is not enough — sandboxed
    platforms may expose the module but refuse ``shm_open``.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=1)
            except (OSError, ValueError):  # pragma: no cover - platform-specific
                _SHM_AVAILABLE = False
            else:
                probe.close()
                try:
                    probe.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
                _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def _segment_name(suffix: str) -> str:
    """A collision-free shm segment name, short enough for every platform.

    macOS caps POSIX shm names at 31 characters, so the name packs the pid
    and a process-wide counter in hex rather than anything descriptive.
    """
    return f"radar{os.getpid():x}x{next(_SEGMENT_COUNTER):x}{suffix}"


class SharedSegmentSpec(NamedTuple):
    """Plain-data handle to one shm segment: everything attach needs."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedPlaneSpec(NamedTuple):
    """Picklable descriptor of one model's published scan-kernel arrays.

    This is what the coordinator ships to worker processes: segment names
    (which embed nothing model-specific — the ``model``/``generation``
    fields carry identity), array geometry, and the two kernel parameters
    (``group_size``, ``signature_bits``) a worker needs to rebuild the
    accumulator dtype and binarization without importing any model code.
    The ``generation`` counter implements the republish protocol: a re-sign
    bumps it, workers compare it against their cached attachment and
    re-attach by (new) segment name when stale.
    """

    model: str
    generation: int
    group_size: int
    signature_bits: int
    total_groups: int
    total_weights: int
    plane: SharedSegmentSpec
    indices: SharedSegmentSpec
    signs: SharedSegmentSpec
    golden: SharedSegmentSpec


class AttachedModelPlane:
    """A worker-side, read-only attachment to one published model plane.

    Maps the four segments named by a :class:`SharedPlaneSpec` and exposes
    them as non-writeable NumPy arrays.  Workers never write the plane —
    mutation (attack injection, recovery, re-adoption) is coordinator
    business, and marking the views read-only turns an accidental write
    into a loud ``ValueError`` instead of silent cross-process corruption.

    Resource-tracker note: Python 3.11's ``SharedMemory`` registers
    *attachments* with the resource tracker as if they were owned segments
    (``track=False`` arrives only in 3.13).  Pool workers are children of
    the coordinator and share its tracker process (both fork and spawn
    inherit the tracker fd), where registration is a set — the attach-side
    register is an idempotent re-add of the coordinator's own entry, and
    the coordinator's ``unlink`` clears it exactly once.  Attachments must
    therefore *not* unregister themselves: doing so would steal the
    coordinator's registration and make its later unlink warn.  This class
    is correspondingly only safe to use from processes sharing the
    publisher's resource tracker (the pool's workers, or the publishing
    process itself).
    """

    def __init__(self, spec: SharedPlaneSpec) -> None:
        if shared_memory is None:  # pragma: no cover - import-gated platforms
            raise ProtectionError("multiprocessing.shared_memory is unavailable")
        self.spec = spec
        self._segments: List["shared_memory.SharedMemory"] = []
        try:
            self.plane = self._attach(spec.plane)
            self.indices = self._attach(spec.indices)
            self.signs = self._attach(spec.signs)
            self.golden = self._attach(spec.golden)
        except BaseException:
            self.close()
            raise

    def _attach(self, segment_spec: SharedSegmentSpec) -> np.ndarray:
        segment = shared_memory.SharedMemory(name=segment_spec.name)
        self._segments.append(segment)
        array: np.ndarray = np.ndarray(
            segment_spec.shape, dtype=np.dtype(segment_spec.dtype), buffer=segment.buf
        )
        array.flags.writeable = False
        return array

    @property
    def generation(self) -> int:
        return self.spec.generation

    def close(self) -> None:
        """Drop the array views and unmap the segments (never unlinks)."""
        self.plane = self.indices = self.signs = self.golden = None
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (BufferError, ValueError):  # pragma: no cover - stray view
                pass


class FusedSignatures:
    """Zero-copy scan kernel: vectorized recomputation across all layers.

    A :class:`SignatureStore` recomputes signatures layer by layer, each
    time re-gathering the layer's full weight tensor.  This view instead
    fuses, once per store build, everything recomputation needs into three
    global arrays under one **global row** numbering (row ``r`` is group
    ``r - row_start`` of its owning layer):

    * an int8 **weight plane** — all layers' flat weights, concatenated;
    * one **gather-index matrix** ``(total_groups, group_size)`` into that
      plane (padding redirected to an in-layer slot);
    * one int8 **sign mask** of the same shape — ``+1``/``-1`` from the
      secret masking key, ``0`` on padded slots — so masking and padding
      cost nothing beyond the multiply already fused into the sum.

    Verifying any row set is then one int8 gather plus one masked-sum
    ``einsum`` accumulated in int32 (int64 only when ``group_size * 128``
    could overflow — never at paper scales), with all workspaces reused
    from a :class:`ScanScratch` across passes.  Both matrices are stored
    slot-major (``group_size × total_groups``) so the einsum reduces over
    the short axis and streams rows contiguously.  There is no per-layer
    Python loop, no per-row ``searchsorted`` dispatch, and no materialized
    ``gathered * mask`` product matrix.

    Weights reach the plane one of two ways:

    * **Adopted (zero-copy)** — :meth:`adopt` copies a model's weights into
      the plane once and rebinds each layer's ``qweight`` to a view of it;
      from then on attacks and recovery mutate the plane directly and a
      scan performs *no* weight copies (the fleet engine adopts every
      registered model).  A layer whose ``qweight`` is later replaced
      wholesale (``set_qweight``) is transparently re-adopted.
    * **Copied (compatibility)** — un-adopted models get their covered
      layers memcpy'd into the plane per pass: still int8-narrow and still
      free of the per-layer gather loop.

    The PR-3 per-layer implementation is retained behind ``reference=True``
    on :meth:`group_sums` / :meth:`signatures` / :meth:`mismatched_rows`
    for bit-exactness tests and as the benchmark baseline
    (``benchmarks/test_bench_scan_kernel.py``).
    """

    def __init__(self, store: SignatureStore) -> None:
        if len(store) == 0:
            raise ProtectionError("Signature store is empty; call store.build(model) first")
        self.store = store
        self.config = store.config
        entries = list(store)
        self.layer_names: List[str] = [entry.layer_name for entry in entries]
        self._positions: Dict[str, int] = {
            name: position for position, name in enumerate(self.layer_names)
        }
        group_size = self.config.group_size
        self._indices: List[np.ndarray] = []
        self._sign_masks: List[np.ndarray] = []
        self._num_weights: List[int] = []
        row_starts = np.zeros(len(entries) + 1, dtype=np.int64)
        golden_blocks = []
        for position, entry in enumerate(entries):
            groups = entry.layout.groups
            valid = groups != PAD_INDEX
            signs = (
                entry.key.signs(group_size)
                if entry.key is not None
                else np.ones(group_size, dtype=np.int64)
            )
            mask = np.where(valid, signs[None, :], 0).astype(np.int8)
            self._indices.append(np.where(valid, groups, 0))
            self._sign_masks.append(mask)
            self._num_weights.append(entry.layout.num_weights)
            row_starts[position + 1] = row_starts[position] + entry.num_groups
            golden_blocks.append(entry.golden)
        self._row_starts = row_starts
        self.golden = np.concatenate(golden_blocks).astype(np.uint8)
        self.total_groups = int(row_starts[-1])
        # Shared empty per-layer arrays for the clean-scan fast path of
        # rows_to_layer_groups (never mutated; reports treat them read-only).
        self._empty_groups: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.int64) for name in self.layer_names
        }
        self._structure_key: Optional[Tuple] = None

        # -- fused kernel state (built lazily by _ensure_kernel: streaming-
        # only callers use the per-layer arrays and never pay for the global
        # matrices or the weight plane) ---------------------------------------
        offsets = np.zeros(len(entries) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(self._num_weights)
        self._weight_offsets = offsets
        self.total_weights = int(offsets[-1])
        self._accum_dtype = accumulator_dtype(group_size)
        self._scratch = ScanScratch()
        self._kernel_indices: Optional[np.ndarray] = None
        self._kernel_signs: Optional[np.ndarray] = None
        self._plane: Optional[np.ndarray] = None
        self._row_arange: Optional[np.ndarray] = None
        # Adoption state: the layer objects whose qweight buffers are views
        # of the plane, and those views themselves (identity-checked per
        # scan; see _prepare_plane).
        self._adopted = False
        self._plane_layers: List[Optional[Module]] = [None] * len(entries)
        self._plane_sources: List[Optional[np.ndarray]] = [None] * len(entries)
        # Scans of a *foreign* model while adopted must not write into the
        # adopted model's plane; they get their own lazily allocated one.
        self._foreign_plane: Optional[np.ndarray] = None
        # Shared-memory publication state (see share/unshare): the live
        # SharedMemory handles keyed like the spec fields, and the plain-data
        # spec workers attach from.
        self._shared_segments: Optional[Dict[str, object]] = None
        self._shared_spec: Optional[SharedPlaneSpec] = None
        #: Weight bytes copied into a plane (adoption, stale re-adoption,
        #: un-adopted per-pass refresh).  The zero-copy acceptance evidence:
        #: in adopted steady state this counter does not move across scans.
        self.plane_copy_bytes = 0

    def _ensure_kernel(self) -> None:
        """Build the global kernel arrays on first kernel use (idempotent).

        Per-layer local indices already send pad slots to 0, so shifting by
        the layer offset keeps every index (pads included) inside its own
        layer's plane segment.  The global matrices are stored TRANSPOSED —
        ``(group_size, total_groups)``, slot-major — so the masked-sum
        einsum reduces over the short slot axis while streaming contiguously
        along the row axis (SIMD-friendly: ~2x the row-major reduction), and
        a row slice is one ``axis=1`` take.
        """
        if self._kernel_indices is not None:
            return
        index_dtype = (
            np.int32 if self.total_weights <= np.iinfo(np.int32).max else np.int64
        )
        self._kernel_indices = np.ascontiguousarray(
            np.concatenate(
                [
                    local + self._weight_offsets[position]
                    for position, local in enumerate(self._indices)
                ]
            ).T
        ).astype(index_dtype)
        self._kernel_signs = np.ascontiguousarray(
            np.concatenate(self._sign_masks).T
        )
        self._plane = np.empty(self.total_weights, dtype=np.int8)
        # Cached identity permutation so _row_block's contiguity test is an
        # allocation-free compare against a view.
        self._row_arange = np.arange(self.total_groups, dtype=np.int64)

    @property
    def adopted(self) -> bool:
        """Whether a model's weight buffers currently live inside the plane."""
        return self._adopted

    def structure_key(self) -> Tuple:
        """Hashable fingerprint of everything that determines this view's
        gather indices, sign masks and row numbering.

        Two stores with equal structure keys — same :class:`RadarConfig`
        grouping/masking parameters over the same layer names and weight
        counts — produce *identical* ``GroupLayout`` index matrices and
        secret-key sign masks (both are deterministic functions of these
        fields), so their slices can be verified together in one batched
        pass (:func:`batched_mismatched_rows`).  Golden signatures are NOT
        part of the key: they depend on each model's weights and stay
        per-view.
        """
        if self._structure_key is None:
            config = self.config
            self._structure_key = (
                config.group_size,
                config.signature_bits,
                config.use_interleave,
                config.interleave_offset,
                config.use_masking,
                config.key_bits,
                config.secret_seed,
                tuple(self.layer_names),
                tuple(self._num_weights),
            )
        return self._structure_key

    def kernel_key(self) -> Tuple[int, int]:
        """The coarser fingerprint bucketed stacking coalesces on.

        Views whose ``(group_size, signature_bits)`` match gather rows of
        the same width and binarize them identically, so their slices can
        share one padded stacked pass even when layer names, weight counts
        or masking keys differ (heterogeneous fleets); see
        :func:`batched_mismatched_rows`.
        """
        return (self.config.group_size, self.config.signature_bits)

    # -- row bookkeeping -------------------------------------------------------
    def row_range(self, layer_name: str) -> Tuple[int, int]:
        """``[start, end)`` global row range of one layer's groups."""
        position = self._position_of(layer_name)
        return int(self._row_starts[position]), int(self._row_starts[position + 1])

    def _position_of(self, layer_name: str) -> int:
        position = self._positions.get(layer_name)
        if position is None:
            raise ProtectionError(
                f"Layer {layer_name!r} is not protected by this store"
            )
        return position

    def _layer_flat(self, layer_map: Mapping[str, Module], position: int) -> np.ndarray:
        name = self.layer_names[position]
        if name not in layer_map:
            raise ProtectionError(f"Protected layer {name!r} missing from model")
        flat = layer_map[name].qweight.reshape(-1)
        if flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {name!r} has {flat.size} weights, expected {self._num_weights[position]}"
            )
        return flat

    # -- plane management ------------------------------------------------------
    def adopt(self, layer_map: Mapping[str, Module]) -> None:
        """Move a model's int8 weights into the kernel plane (zero-copy scans).

        Copies each layer's current weights into its plane segment and
        rebinds the layer's ``qweight`` to a view of that segment, so every
        later in-place mutation (attacks, recovery) lands directly in the
        plane and scans gather without copying anything.  Layers whose
        buffer is replaced wholesale later (``set_qweight``, re-quantize)
        are re-adopted transparently on the next scan.

        A model previously adopted by another view with identical geometry
        (the re-sign path: same layers, same weight counts) already keeps
        its buffers in one conforming plane — that plane is adopted as-is,
        with no copy and no rebinding, so weight references taken before a
        re-protect stay valid.
        """
        self._ensure_kernel()
        for position in range(len(self.layer_names)):
            name = self.layer_names[position]
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
        alias = self._plane_alias(layer_map)
        if alias is not None:
            self._plane = alias
            for position, name in enumerate(self.layer_names):
                layer = layer_map[name]
                self._plane_layers[position] = layer
                self._plane_sources[position] = layer.qweight
        else:
            for position, name in enumerate(self.layer_names):
                self._adopt_layer(position, layer_map[name])
        self._adopted = True

    def _plane_alias(self, layer_map: Mapping[str, Module]) -> Optional[np.ndarray]:
        """An existing buffer the layers' weights already form a plane in.

        Returns the one int8 array every layer's ``qweight`` is a
        contiguous view of, laid out exactly at this view's offsets —
        or ``None`` when the buffers are independent and adoption must
        copy-and-rebind.
        """
        owner: Optional[np.ndarray] = None
        owner_address = 0
        for position, name in enumerate(self.layer_names):
            qweight = layer_map[name].qweight
            if (
                qweight is None
                or qweight.dtype != np.int8
                or not qweight.flags["C_CONTIGUOUS"]
                or qweight.size != self._num_weights[position]
            ):
                return None
            # Walk to the owning ndarray.  Stop as soon as the next base is
            # not an ndarray: a shm-backed plane's base is the segment's
            # memoryview, and the plane array itself is the owner we want.
            base = qweight
            while isinstance(base.base, np.ndarray):
                base = base.base
            if base is qweight:
                return None
            if owner is None:
                if (
                    base.dtype != np.int8
                    or base.ndim != 1
                    or not base.flags["C_CONTIGUOUS"]
                    or base.size != self.total_weights
                ):
                    return None
                owner = base
                owner_address = owner.__array_interface__["data"][0]
            elif base is not owner:
                return None
            address = qweight.__array_interface__["data"][0]
            if address != owner_address + int(self._weight_offsets[position]):
                return None
        return owner

    def _adopt_layer(self, position: int, layer: Module) -> None:
        flat = layer.qweight.reshape(-1)
        # Adoption rebinds the layer's buffer, so a bad dtype here would not
        # just miscompute one scan — it would silently truncate the weights
        # into the int8 plane and corrupt the model.  Fail loudly instead.
        if flat.dtype != np.int8:
            raise ProtectionError(
                f"Layer {self.layer_names[position]!r} qweight has dtype "
                f"{flat.dtype}; only int8 weights can be adopted into the plane"
            )
        if flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {self.layer_names[position]!r} has {flat.size} weights, "
                f"expected {self._num_weights[position]}"
            )
        start, end = self._weight_offsets[position], self._weight_offsets[position + 1]
        segment = self._plane[start:end]
        segment[:] = flat
        self.plane_copy_bytes += int(flat.size)
        layer.qweight = segment.reshape(layer.qweight.shape)
        self._plane_layers[position] = layer
        self._plane_sources[position] = layer.qweight

    def _covered_positions(self, rows: Optional[np.ndarray]) -> Sequence[int]:
        """Layers whose plane segment a row slice reads (all, for a full scan)."""
        if rows is None:
            return range(len(self.layer_names))
        owning = np.searchsorted(self._row_starts, rows, side="right") - 1
        return np.unique(owning).tolist()

    def _prepare_plane(
        self, layer_map: Mapping[str, Module], rows: Optional[np.ndarray]
    ) -> np.ndarray:
        """The plane the kernel should gather from, refreshed as needed.

        Adopted steady state: every layer's ``qweight`` *is* its plane
        segment, so this is a pure identity sweep — zero copies.  A layer
        whose buffer was swapped out is re-adopted in place; a scan of a
        different model entirely falls back to memcpy-ing its covered
        layers into a separate foreign plane (the adopted model's weights
        live in the main plane and must not be overwritten).
        """
        self._ensure_kernel()
        if self._adopted:
            stale: List[int] = []
            foreign = False
            for position, name in enumerate(self.layer_names):
                if name not in layer_map:
                    raise ProtectionError(
                        f"Protected layer {name!r} missing from model"
                    )
                layer = layer_map[name]
                if layer is self._plane_layers[position]:
                    if layer.qweight is not self._plane_sources[position]:
                        stale.append(position)
                else:
                    foreign = True
                    break
            if not foreign:
                for position in stale:
                    self._adopt_layer(
                        position, layer_map[self.layer_names[position]]
                    )
                return self._plane
            if self._foreign_plane is None:
                self._foreign_plane = np.empty(self.total_weights, dtype=np.int8)
            plane = self._foreign_plane
        else:
            plane = self._plane
        for position in self._covered_positions(rows):
            flat = self._layer_flat(layer_map, position)
            start = self._weight_offsets[position]
            plane[start : start + flat.size] = flat
            self.plane_copy_bytes += int(flat.size)
        return plane

    # -- shared-memory publication ---------------------------------------------
    @property
    def shared_spec(self) -> Optional[SharedPlaneSpec]:
        """The spec workers attach from, or ``None`` while unpublished."""
        return self._shared_spec

    def share(self, model: str, generation: int) -> SharedPlaneSpec:
        """Publish the kernel arrays into ``multiprocessing.shared_memory``.

        Allocates one named segment per kernel array (weight plane, gather
        indices, sign mask, golden signatures), copies the current contents
        in, and rebinds this view — including every adopted layer's
        ``qweight`` — onto the segment-backed arrays.  From then on the
        coordinator's in-place mutations (attack injection, recovery) land
        directly in shared memory and are visible to attached workers with
        no further copies; scans stay zero-copy exactly as before, just on
        a different backing allocation.

        ``generation`` is recorded in the returned spec; the caller owns
        the counter and bumps it when a re-sign republishes (segment names
        are fresh each publish, so a stale worker attaching by old name
        fails fast rather than reading a re-signed plane).
        """
        if not shared_memory_available():
            raise ProtectionError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if self._shared_segments is not None:
            return self._shared_spec
        self._ensure_kernel()
        arrays = {
            "plane": self._plane,
            "indices": self._kernel_indices,
            "signs": self._kernel_signs,
            "golden": self.golden,
        }
        segments: Dict[str, object] = {}
        shared_arrays: Dict[str, np.ndarray] = {}
        specs: Dict[str, SharedSegmentSpec] = {}
        try:
            for key, array in arrays.items():
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes), name=_segment_name(key[0])
                )
                segments[key] = segment
                shared = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                shared[...] = array
                shared_arrays[key] = shared
                specs[key] = SharedSegmentSpec(
                    name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
                )
        except (OSError, ValueError) as error:
            for key in list(shared_arrays):
                del shared_arrays[key]
            for segment in segments.values():
                try:
                    segment.close()
                    segment.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
            raise ProtectionError(
                f"could not publish shared-memory plane: {error}"
            ) from error
        self._plane = shared_arrays["plane"]
        self._kernel_indices = shared_arrays["indices"]
        self._kernel_signs = shared_arrays["signs"]
        self.golden = shared_arrays["golden"]
        if self._adopted:
            self._rebind_layers()
        self._shared_segments = segments
        self._shared_spec = SharedPlaneSpec(
            model=model,
            generation=int(generation),
            group_size=int(self.config.group_size),
            signature_bits=int(self.config.signature_bits),
            total_groups=self.total_groups,
            total_weights=self.total_weights,
            plane=specs["plane"],
            indices=specs["indices"],
            signs=specs["signs"],
            golden=specs["golden"],
        )
        return self._shared_spec

    def _rebind_layers(self) -> None:
        """Point every adopted layer's ``qweight`` at the current plane."""
        for position, layer in enumerate(self._plane_layers):
            if layer is None:
                continue
            start = self._weight_offsets[position]
            end = self._weight_offsets[position + 1]
            segment = self._plane[start:end]
            layer.qweight = segment.reshape(layer.qweight.shape)
            self._plane_sources[position] = layer.qweight

    def unshare(self) -> None:
        """Move the kernel arrays back to private memory, destroy the segments.

        The graceful-teardown path (engine ``close``): plane contents are
        preserved — adopted layers are rebound onto a fresh heap plane so
        the model stays fully usable — and only then are the segments
        unmapped and unlinked.  Idempotent.
        """
        if self._shared_segments is None:
            return
        self._plane = np.array(self._plane)
        self._kernel_indices = np.array(self._kernel_indices)
        self._kernel_signs = np.array(self._kernel_signs)
        self.golden = np.array(self.golden)
        if self._adopted:
            self._rebind_layers()
        self._destroy_segments()

    def release_shared(self) -> None:
        """Destroy the segments without preserving the plane (discard path).

        For a view being replaced after a re-sign: the successor view has
        already re-homed the layers' weights onto its own plane, so this
        view just drops its segment-backed arrays (golden is copied out —
        reports may still reference it) and unlinks.  The kernel arrays
        rebuild lazily if the view is ever scanned again.
        """
        if self._shared_segments is None:
            return
        self.golden = np.array(self.golden)
        self._plane = None
        self._kernel_indices = None
        self._kernel_signs = None
        self._adopted = False
        self._plane_layers = [None] * len(self.layer_names)
        self._plane_sources = [None] * len(self.layer_names)
        self._foreign_plane = None
        self._destroy_segments()

    def _destroy_segments(self) -> None:
        segments, self._shared_segments = self._shared_segments, None
        self._shared_spec = None
        for segment in segments.values():
            # Unlink before close: unlinking works with live mappings, and
            # doing it first guarantees the name is gone even if a stray
            # external view makes close() raise.
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            try:
                segment.close()
            except (BufferError, ValueError):  # pragma: no cover - stray view
                pass

    # -- the kernel ------------------------------------------------------------
    def _validated_rows(self, rows: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if rows is None:
            return None
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and not (0 <= rows.min() and rows.max() < self.total_groups):
            raise ProtectionError(f"global rows out of range ({self.total_groups} groups)")
        return rows

    def _kernel_sums(
        self,
        layer_map: Mapping[str, Module],
        rows: Optional[np.ndarray],
        scratch: Optional[ScanScratch] = None,
    ) -> np.ndarray:
        """Masked checksums for validated ``rows`` (``None`` = all groups).

        Returns a view into scratch storage — callers either consume it
        immediately (binarize/compare) or copy it out (:meth:`group_sums`).
        """
        self._ensure_kernel()
        plane = self._prepare_plane(layer_map, rows)
        scratch = scratch if scratch is not None else self._scratch
        group_size = self.config.group_size
        if rows is None:
            indices = self._kernel_indices
            signs = self._kernel_signs
            count = self.total_groups
        else:
            count = int(rows.size)
            if count == 0:
                return np.empty(0, dtype=self._accum_dtype)
            indices, signs = self._row_block(rows, count, scratch)
        gathered = scratch.take("gathered", (group_size, count), np.int8)
        # mode="clip" skips per-element bounds checking; every index was
        # validated at build time (and row slices just above), so clipping
        # can never trigger.
        np.take(plane, indices, out=gathered, mode="clip")
        sums = scratch.take("sums", (count,), self._accum_dtype)
        np.einsum("gr,gr->r", gathered, signs, dtype=self._accum_dtype, out=sums)
        return sums

    def _row_block(
        self, rows: np.ndarray, count: int, scratch: ScanScratch
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Index and sign columns for a validated row slice.

        A contiguous ascending range — the shape every round-robin shard
        slice has — is served as plain views of the global matrices (no
        copy at all); anything else is gathered into scratch with one
        ``axis=1`` take per matrix.
        """
        start = int(rows[0])
        if int(rows[-1]) - start + 1 == count and np.array_equal(
            rows, self._row_arange[start : start + count]
        ):
            block = slice(start, start + count)
            return self._kernel_indices[:, block], self._kernel_signs[:, block]
        group_size = self.config.group_size
        indices = scratch.take(
            "row-indices", (group_size, count), self._kernel_indices.dtype
        )
        np.take(self._kernel_indices, rows, axis=1, out=indices)
        signs = scratch.take("row-signs", (group_size, count), np.int8)
        np.take(self._kernel_signs, rows, axis=1, out=signs)
        return indices, signs

    # -- recomputation ---------------------------------------------------------
    def group_sums(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Masked checksums for the given global rows (``None`` = every group).

        ``reference=True`` runs the retained PR-3 per-layer path (int64
        promotion, per-layer gathers, ``searchsorted`` routing) — the
        bit-exactness oracle and benchmark baseline for the kernel.
        """
        layer_map = dict(quantized_layers(model))
        rows = self._validated_rows(rows)
        if reference:
            return self._reference_sums(layer_map, rows)
        return self._kernel_sums(layer_map, rows).astype(np.int64)

    def _reference_sums(
        self, layer_map: Mapping[str, Module], rows: Optional[np.ndarray]
    ) -> np.ndarray:
        if rows is None:
            sums = np.empty(self.total_groups, dtype=np.int64)
            for position in range(len(self.layer_names)):
                flat = self._layer_flat(layer_map, position)
                start, end = self._row_starts[position], self._row_starts[position + 1]
                gathered = flat[self._indices[position]].astype(np.int64)
                sums[start:end] = (gathered * self._sign_masks[position]).sum(axis=1)
            return sums
        sums = np.empty(rows.size, dtype=np.int64)
        owning_layer = np.searchsorted(self._row_starts, rows, side="right") - 1
        for position in np.unique(owning_layer):
            where = np.nonzero(owning_layer == position)[0]
            local = rows[where] - self._row_starts[position]
            flat = self._layer_flat(layer_map, position)
            gathered = flat[self._indices[position][local]].astype(np.int64)
            sums[where] = (gathered * self._sign_masks[position][local]).sum(axis=1)
        return sums

    def signatures(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Current signatures for the given global rows, in row order."""
        if reference:
            return signature_from_sums(
                self.group_sums(model, rows, reference=True), self.config.signature_bits
            )
        layer_map = dict(quantized_layers(model))
        rows = self._validated_rows(rows)
        sums = self._kernel_sums(layer_map, rows)
        return signature_from_sums(sums, self.config.signature_bits)

    def mismatched_rows(
        self,
        model: Module,
        rows: Optional[np.ndarray] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Global rows (among ``rows``) whose current signature differs from golden."""
        if reference:
            current = self.signatures(model, rows, reference=True)
            if rows is None:
                return np.nonzero(current != self.golden)[0].astype(np.int64)
            rows = np.asarray(rows, dtype=np.int64)
            return rows[current != self.golden[rows]]
        layer_map = dict(quantized_layers(model))
        rows = self._validated_rows(rows)
        sums = self._kernel_sums(layer_map, rows)
        # The sums live in scratch and are consumed right here, so binarize
        # them in place instead of allocating signature_from_sums's
        # intermediates on the hottest path.
        shift, mask = signature_shift_mask(self.config.signature_bits)
        np.right_shift(sums, shift, out=sums)
        np.bitwise_and(sums, mask, out=sums)
        if rows is None:
            return np.nonzero(sums != self.golden)[0].astype(np.int64)
        return rows[sums != self.golden[rows]]

    def layer_stream_signatures(
        self,
        layer_name: str,
        qweight_flat: np.ndarray,
        groups: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Signatures of one layer's *streamed* weights on the kernel path.

        The streaming counterpart of :meth:`signatures`: no model object,
        just the flat int8 payload a DMA engine would deliver for
        ``layer_name``.  Uses the fused per-layer gather matrix and sign
        mask with narrow accumulation, so
        :class:`~repro.core.streaming.StreamingVerifier` shares the
        kernel's speed without owning a plane.  ``groups`` restricts the
        check to the listed local group indices (in order).
        """
        position = self._position_of(layer_name)
        qweight_flat = np.asarray(qweight_flat)
        if qweight_flat.dtype != np.int8:
            raise ProtectionError(
                f"Expected int8 weights, got dtype {qweight_flat.dtype}"
            )
        if qweight_flat.ndim != 1 or qweight_flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {layer_name!r} stream has shape {qweight_flat.shape}, "
                f"expected ({self._num_weights[position]},)"
            )
        indices = self._indices[position]
        signs = self._sign_masks[position]
        if groups is not None:
            groups = np.atleast_1d(np.asarray(groups, dtype=np.int64))
            num_groups = indices.shape[0]
            if groups.size and not (
                0 <= groups.min() and groups.max() < num_groups
            ):
                raise ProtectionError(
                    f"group indices out of range ({num_groups} groups)"
                )
            if groups.size == 0:
                return np.empty(0, dtype=np.uint8)
            count = int(groups.size)
            group_size = self.config.group_size
            row_indices = self._scratch.take(
                "stream-indices", (count, group_size), indices.dtype
            )
            np.take(indices, groups, axis=0, out=row_indices)
            row_signs = self._scratch.take(
                "stream-signs", (count, group_size), np.int8
            )
            np.take(signs, groups, axis=0, out=row_signs)
            indices, signs = row_indices, row_signs
        gathered = self._scratch.take("stream-gathered", indices.shape, np.int8)
        np.take(qweight_flat, indices, out=gathered)
        sums = self._scratch.take("stream-sums", (indices.shape[0],), self._accum_dtype)
        np.einsum("ij,ij->i", gathered, signs, dtype=self._accum_dtype, out=sums)
        return signature_from_sums(sums, self.config.signature_bits)

    def rows_to_layer_groups(self, rows: np.ndarray) -> Dict[str, np.ndarray]:
        """Translate global rows into per-layer group indices (all layers present).

        Layers with no listed row map to an empty array, matching the shape
        of a full :class:`~repro.core.detector.DetectionReport`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            # Clean scans dominate a healthy fleet's ticks; skip the per-layer
            # unique/compare work and hand out the shared empty arrays.
            return dict(self._empty_groups)
        result: Dict[str, np.ndarray] = {}
        for position, name in enumerate(self.layer_names):
            start, end = self._row_starts[position], self._row_starts[position + 1]
            inside = rows[(rows >= start) & (rows < end)]
            result[name] = np.unique(inside - start).astype(np.int64)
        return result


RowsArg = Union[np.ndarray, Sequence[np.ndarray]]


def split_by_padding_waste(
    sizes: Sequence[int], max_waste: float
) -> List[List[int]]:
    """Partition slice sizes so no padded stack wastes more than ``max_waste``.

    Bucketed padded stacking pads every model's row count to the bucket
    maximum, so a bucket mixing one huge slice with several tiny ones does
    almost all of its gather/einsum work on zero-signed padding.  This
    helper is the **width-disparity guard**: given the per-slice row counts
    of one kernel bucket, it returns index groups (into ``sizes``) such
    that every slice in a group satisfies

        size >= (1 - max_waste) * max(sizes in group)

    i.e. no slice's padded column is more than ``max_waste`` padding.  That
    per-column bound implies the group's aggregate padding-waste ratio
    ``1 - sum(sizes) / (width * len(group))`` stays at or below
    ``max_waste`` too (it is the mean of the per-column wastes).  Groups
    are cut over the sizes in descending order, so similarly sized slices
    stay coalesced (keeping the dispatch-amortization win) and a dwarfing
    slice is split off alone rather than dragging one near-threshold small
    slice along with it.

    ``max_waste`` must lie in ``[0, 1)``; ``0`` coalesces only exactly
    equal sizes, values near ``1`` effectively disable the guard.  Every
    input index appears in exactly one returned group, and a single-slice
    group is always acceptable (its waste is zero by definition).
    """
    if not 0 <= max_waste < 1:
        raise ProtectionError(f"max_waste must be in [0, 1), got {max_waste}")
    order = sorted(range(len(sizes)), key=lambda index: -int(sizes[index]))
    groups: List[List[int]] = []
    current: List[int] = []
    width = 0
    for index in order:
        size = int(sizes[index])
        if not current:
            current, width = [index], size
        elif size >= (1.0 - max_waste) * width:
            current.append(index)
        else:
            groups.append(current)
            current, width = [index], size
    if current:
        groups.append(current)
    return groups


def batched_mismatched_rows(
    views: Sequence[FusedSignatures],
    layer_maps: Sequence[Mapping[str, Module]],
    rows: RowsArg,
    scratch: Optional[ScanScratch] = None,
) -> List[np.ndarray]:
    """Verify row slices of several models in one stacked kernel pass.

    ``views[i]`` is model *i*'s fused view and ``layer_maps[i]`` its
    ``{layer_name: quantized layer}`` mapping.  Two calling conventions:

    * ``rows`` as a **single array** — the legacy homogeneous contract: all
      views must share a :meth:`FusedSignatures.structure_key` and the one
      slice is verified for every model.
    * ``rows`` as a **sequence of per-model arrays** — bucketed padded
      stacking: views only need matching :meth:`FusedSignatures.kernel_key`
      (``group_size``, ``signature_bits``); row counts are padded to the
      bucket max with zero sign rows, so models of *different*
      architectures still share the stacked gather + einsum + binarize +
      compare.  This is what lets the fleet engine coalesce heterogeneous
      fleets instead of falling back to sequential per-model scans.

    When every view shares a structure key and every model scans the same
    rows, the stack degenerates to the broadcast fast path (one shared
    index/sign matrix); otherwise each model contributes its own.  Either
    way the per-pass NumPy dispatch overhead is paid once for the whole
    batch, the gather stays int8 and the accumulation narrow, and all
    stacked workspaces come from ``scratch`` (the engine passes its
    per-bucket :class:`ScanScratch`; ``None`` allocates a private one).

    Returns one flagged-row array per model, identical to what
    ``views[i].mismatched_rows(model_i, rows_i)`` would report.
    """
    if not views:
        raise ProtectionError("batched_mismatched_rows needs at least one view")
    if len(views) != len(layer_maps):
        raise ProtectionError(
            f"got {len(views)} views but {len(layer_maps)} layer maps"
        )
    # A list/tuple is per-model rows only when every element is itself an
    # array-like; a plain sequence of ints (``rows=[0, 1, 2]``) keeps its
    # historical meaning of one shared row slice.
    per_model = (
        not isinstance(rows, np.ndarray)
        and isinstance(rows, (list, tuple))
        and len(rows) > 0
        and all(isinstance(item, (np.ndarray, list, tuple)) for item in rows)
    )
    shared = not per_model
    reference = views[0]
    if shared:
        key = reference.structure_key()
        for view in views[1:]:
            if view.structure_key() != key:
                raise ProtectionError(
                    "batched verification of one shared row slice needs "
                    "structurally identical models; structure keys differ "
                    "(pass per-model row arrays for bucketed stacking)"
                )
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return [rows.copy() for _ in views]
        rows_list = [reference._validated_rows(rows)] * len(views)
    else:
        if len(rows) != len(views):
            raise ProtectionError(
                f"got {len(views)} views but {len(rows)} row arrays"
            )
        kernel_key = reference.kernel_key()
        for view in views[1:]:
            if view.kernel_key() != kernel_key:
                raise ProtectionError(
                    "bucketed stacking needs matching (group_size, "
                    "signature_bits) kernel keys"
                )
        rows_list = [
            view._validated_rows(np.asarray(item, dtype=np.int64))
            for view, item in zip(views, rows)
        ]

    num_models = len(views)
    sizes = [int(item.size) for item in rows_list]
    width = max(sizes)
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in views]
    for view in views:
        view._ensure_kernel()
    scratch = scratch if scratch is not None else ScanScratch()
    group_size = reference.config.group_size
    accum = reference._accum_dtype
    signature_bits = reference.config.signature_bits

    homogeneous = all(
        view.structure_key() == reference.structure_key() for view in views
    ) and all(
        size == sizes[0] and np.array_equal(item, rows_list[0])
        for size, item in zip(sizes, rows_list)
    )

    stacked = scratch.take("stacked", (num_models, group_size, width), np.int8)
    sums = scratch.take("stacked-sums", (num_models, width), accum)
    if homogeneous:
        rows0 = rows_list[0]
        indices, signs = reference._row_block(rows0, width, scratch)
        for index, (view, layer_map) in enumerate(zip(views, layer_maps)):
            plane = view._prepare_plane(layer_map, rows0)
            np.take(plane, indices, out=stacked[index], mode="clip")
        np.einsum("kgr,gr->kr", stacked, signs, dtype=accum, out=sums)
    else:
        signs = scratch.take(
            "stacked-signs", (num_models, group_size, width), np.int8
        )
        padded_rows = scratch.take("padded-rows", (width,), np.int64)
        for index, (view, layer_map, model_rows) in enumerate(
            zip(views, layer_maps, rows_list)
        ):
            size = sizes[index]
            if size == 0:
                signs[index].fill(0)
                continue
            plane = view._prepare_plane(layer_map, model_rows)
            # Pad the row list (any valid row does — 0) so every take lands
            # in a contiguous full-width workspace; the padded columns' sign
            # is then zeroed, which zeroes their accumulated sum exactly.
            padded_rows[:size] = model_rows
            padded_rows[size:] = 0
            indices = scratch.take(
                "bucket-indices", (group_size, width), view._kernel_indices.dtype
            )
            np.take(view._kernel_indices, padded_rows, axis=1, out=indices)
            np.take(view._kernel_signs, padded_rows, axis=1, out=signs[index])
            if size < width:
                signs[index, :, size:] = 0
            np.take(plane, indices, out=stacked[index], mode="clip")
        np.einsum("kgr,kgr->kr", stacked, signs, dtype=accum, out=sums)

    current = signature_from_sums(sums, signature_bits)
    flagged: List[np.ndarray] = []
    for index, (view, model_rows) in enumerate(zip(views, rows_list)):
        size = sizes[index]
        if size == 0:
            flagged.append(np.empty(0, dtype=np.int64))
            continue
        mismatched = current[index, :size] != view.golden[model_rows]
        flagged.append(model_rows[mismatched])
    return flagged


def stacked_mismatched_rows(
    planes: Sequence[np.ndarray],
    indices_list: Sequence[np.ndarray],
    signs_list: Sequence[np.ndarray],
    goldens: Sequence[np.ndarray],
    rows_list: Sequence[np.ndarray],
    group_size: int,
    signature_bits: int,
    scratch: Optional[ScanScratch] = None,
    homogeneous: bool = False,
) -> List[np.ndarray]:
    """:func:`batched_mismatched_rows` over plain arrays instead of views.

    The worker-process half of the scan kernel: a process attached to
    published :class:`SharedPlaneSpec` segments has no ``Module`` objects
    and no :class:`FusedSignatures` — just each model's weight plane,
    slot-major gather-index and sign matrices, and golden signatures.  This
    runs the exact same padded-stacking arithmetic (int8 gather with
    ``mode="clip"``, narrow-accumulation einsum, in-order binarize and
    golden compare), so its flagged rows are bit-identical to the
    coordinator's in-process path for the same inputs.

    ``homogeneous=True`` is a coordinator-supplied promise that every model
    shares one structure key *and* one row slice (the engine knows; the
    worker cannot cheaply verify), enabling the shared index/sign broadcast
    fast path.  The flag changes dispatch cost only — integer sums are
    exact, so both paths produce identical results.
    """
    num_models = len(planes)
    if not (
        num_models == len(indices_list) == len(signs_list) == len(goldens) == len(rows_list)
    ):
        raise ProtectionError("stacked_mismatched_rows arguments disagree on model count")
    if num_models == 0:
        return []
    rows_list = [np.asarray(rows, dtype=np.int64) for rows in rows_list]
    for rows, golden in zip(rows_list, goldens):
        if rows.size and not (0 <= rows.min() and rows.max() < golden.size):
            raise ProtectionError(f"global rows out of range ({golden.size} groups)")
    sizes = [int(rows.size) for rows in rows_list]
    width = max(sizes)
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in planes]
    scratch = scratch if scratch is not None else ScanScratch()
    accum = accumulator_dtype(group_size)
    stacked = scratch.take("stacked", (num_models, group_size, width), np.int8)
    sums = scratch.take("stacked-sums", (num_models, width), accum)
    if homogeneous:
        rows0 = rows_list[0]
        start = int(rows0[0])
        if int(rows0[-1]) - start + 1 == width and np.all(np.diff(rows0) == 1):
            block = slice(start, start + width)
            indices = indices_list[0][:, block]
            signs = signs_list[0][:, block]
        else:
            indices = scratch.take(
                "row-indices", (group_size, width), indices_list[0].dtype
            )
            np.take(indices_list[0], rows0, axis=1, out=indices)
            signs = scratch.take("row-signs", (group_size, width), np.int8)
            np.take(signs_list[0], rows0, axis=1, out=signs)
        for index, plane in enumerate(planes):
            np.take(plane, indices, out=stacked[index], mode="clip")
        np.einsum("kgr,gr->kr", stacked, signs, dtype=accum, out=sums)
    else:
        signs = scratch.take("stacked-signs", (num_models, group_size, width), np.int8)
        padded_rows = scratch.take("padded-rows", (width,), np.int64)
        for index in range(num_models):
            size = sizes[index]
            if size == 0:
                signs[index].fill(0)
                continue
            padded_rows[:size] = rows_list[index]
            padded_rows[size:] = 0
            indices = scratch.take(
                "bucket-indices", (group_size, width), indices_list[index].dtype
            )
            np.take(indices_list[index], padded_rows, axis=1, out=indices)
            np.take(signs_list[index], padded_rows, axis=1, out=signs[index])
            if size < width:
                signs[index, :, size:] = 0
            np.take(planes[index], indices, out=stacked[index], mode="clip")
        np.einsum("kgr,kgr->kr", stacked, signs, dtype=accum, out=sums)
    current = signature_from_sums(sums, signature_bits)
    flagged: List[np.ndarray] = []
    for index in range(num_models):
        size = sizes[index]
        if size == 0:
            flagged.append(np.empty(0, dtype=np.int64))
            continue
        model_rows = rows_list[index]
        mismatched = current[index, :size] != goldens[index][model_rows]
        flagged.append(model_rows[mismatched])
    return flagged


def flip_group_index(store: SignatureStore, layer_name: str, flat_index: int) -> Tuple[str, int]:
    """The ``(layer, group)`` a given weight index belongs to under the store's layout."""
    entry = store.layer(layer_name)
    return layer_name, entry.layout.group_of(flat_index)
