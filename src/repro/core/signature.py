"""Golden signature storage (the secure on-chip memory of the paper).

A :class:`SignatureStore` holds, for every protected layer, its
:class:`~repro.core.interleave.GroupLayout`, its secret
:class:`~repro.core.masking.SecretKey` and the golden signatures computed
from the clean weights.  The store also accounts for its own size, which is
the paper's storage-overhead metric (2 bits per group; 5.6 KB for
ResNet-18 at ``G = 512``, 8.2 KB for ResNet-20 at ``G = 8``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.checksum import compute_signatures, signature_from_sums
from repro.core.config import RadarConfig
from repro.core.interleave import PAD_INDEX, GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class LayerSignatures:
    """Per-layer protection state."""

    layer_name: str
    layout: GroupLayout
    key: Optional[SecretKey]
    golden: np.ndarray  # uint8, one packed signature per group

    @property
    def num_groups(self) -> int:
        return self.layout.num_groups


class SignatureStore:
    """Golden signatures for all quantized layers of one model."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self._layers: Dict[str, LayerSignatures] = {}
        self._fused: Optional["FusedSignatures"] = None

    # -- construction ---------------------------------------------------------
    def build(self, model: Module) -> "SignatureStore":
        """Compute golden signatures from the model's current (clean) weights."""
        layers = quantized_layers(model)
        if not layers:
            raise ProtectionError("Model has no quantized layers to protect")
        self._layers.clear()
        self._fused = None
        for name, layer in layers:
            if not layer.is_quantized:
                raise ProtectionError(
                    f"Layer {name!r} is not quantized; call quantize_model before protecting"
                )
            self._layers[name] = self._build_layer(name, layer.qweight)
        return self

    def _build_layer(self, name: str, qweight: np.ndarray) -> LayerSignatures:
        config = self.config
        layout = GroupLayout(
            num_weights=int(qweight.size),
            group_size=config.group_size,
            use_interleave=config.use_interleave,
            interleave_offset=config.interleave_offset,
        )
        key = (
            SecretKey.generate(config.key_bits, config.secret_seed, name)
            if config.use_masking
            else None
        )
        golden = compute_signatures(
            qweight.reshape(-1), layout, key, config.signature_bits
        )
        return LayerSignatures(layer_name=name, layout=layout, key=key, golden=golden)

    # -- access ---------------------------------------------------------------
    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._layers

    def __iter__(self) -> Iterator[LayerSignatures]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, layer_name: str) -> LayerSignatures:
        if layer_name not in self._layers:
            raise ProtectionError(f"Layer {layer_name!r} is not protected by this store")
        return self._layers[layer_name]

    def layer_names(self) -> List[str]:
        return list(self._layers)

    # -- run-time recomputation ----------------------------------------------
    def current_signatures(self, model: Module) -> Dict[str, np.ndarray]:
        """Recompute signatures from the model's current (possibly corrupted) weights."""
        layer_map = dict(quantized_layers(model))
        signatures = {}
        for name, entry in self._layers.items():
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
            signatures[name] = compute_signatures(
                layer_map[name].qweight.reshape(-1),
                entry.layout,
                entry.key,
                self.config.signature_bits,
            )
        return signatures

    def fused(self) -> "FusedSignatures":
        """Cached vectorized view over all layers (rebuilt by :meth:`build`)."""
        if self._fused is None:
            self._fused = FusedSignatures(self)
        return self._fused

    # -- storage accounting ----------------------------------------------------
    def total_groups(self) -> int:
        return sum(entry.num_groups for entry in self._layers.values())

    def storage_bits(self, include_keys: bool = False) -> int:
        """Bits of secure storage needed for the golden signatures.

        ``include_keys=True`` adds the per-layer secret keys (``N_k`` bits
        each) to the count; the paper reports signature storage only, since
        the keys are negligible (16 bits per layer).
        """
        bits = self.total_groups() * self.config.signature_bits
        if include_keys and self.config.use_masking:
            bits += len(self._layers) * self.config.key_bits
        return bits

    def storage_bytes(self, include_keys: bool = False) -> float:
        return self.storage_bits(include_keys) / 8.0

    def storage_kilobytes(self, include_keys: bool = False) -> float:
        return self.storage_bytes(include_keys) / 1024.0

    def describe(self) -> Dict[str, float]:
        """Summary used by reports."""
        return {
            "layers": len(self._layers),
            "groups": self.total_groups(),
            "signature_bits": self.config.signature_bits,
            "storage_kb": self.storage_kilobytes(),
        }


class FusedSignatures:
    """Vectorized signature recomputation across all protected layers.

    A :class:`SignatureStore` recomputes signatures layer by layer, each time
    re-gathering the layer's full weight tensor.  This view instead caches,
    once per store build, everything the recomputation needs:

    * per layer, the padded gather-index matrix (pad slots redirected to
      index 0) and a fused *sign mask* — ``+1``/``-1`` from the secret
      masking key, ``0`` on padded slots — so masking and padding are one
      multiply;
    * the golden signatures of all layers concatenated under a **global
      row** numbering (row ``r`` is group ``r - row_start`` of its layer).

    Recomputing any slice of rows then costs one fancy-gather + multiply +
    row-sum per covered layer — work proportional to the slice, not to the
    model — which is exactly what the amortized
    :class:`~repro.core.scheduler.ScanScheduler` needs, and a full scan
    becomes a single batched pass with no per-layer index rebuilding.
    """

    def __init__(self, store: SignatureStore) -> None:
        if len(store) == 0:
            raise ProtectionError("Signature store is empty; call store.build(model) first")
        self.store = store
        self.config = store.config
        entries = list(store)
        self.layer_names: List[str] = [entry.layer_name for entry in entries]
        group_size = self.config.group_size
        self._indices: List[np.ndarray] = []
        self._sign_masks: List[np.ndarray] = []
        self._num_weights: List[int] = []
        row_starts = np.zeros(len(entries) + 1, dtype=np.int64)
        golden_blocks = []
        for position, entry in enumerate(entries):
            groups = entry.layout.groups
            valid = groups != PAD_INDEX
            signs = (
                entry.key.signs(group_size)
                if entry.key is not None
                else np.ones(group_size, dtype=np.int64)
            )
            mask = np.where(valid, signs[None, :], 0).astype(np.int8)
            self._indices.append(np.where(valid, groups, 0))
            self._sign_masks.append(mask)
            self._num_weights.append(entry.layout.num_weights)
            row_starts[position + 1] = row_starts[position] + entry.num_groups
            golden_blocks.append(entry.golden)
        self._row_starts = row_starts
        self.golden = np.concatenate(golden_blocks).astype(np.uint8)
        self.total_groups = int(row_starts[-1])
        # Shared empty per-layer arrays for the clean-scan fast path of
        # rows_to_layer_groups (never mutated; reports treat them read-only).
        self._empty_groups: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.int64) for name in self.layer_names
        }
        self._structure_key: Optional[Tuple] = None

    def structure_key(self) -> Tuple:
        """Hashable fingerprint of everything that determines this view's
        gather indices, sign masks and row numbering.

        Two stores with equal structure keys — same :class:`RadarConfig`
        grouping/masking parameters over the same layer names and weight
        counts — produce *identical* ``GroupLayout`` index matrices and
        secret-key sign masks (both are deterministic functions of these
        fields), so their slices can be verified together in one batched
        pass (:func:`batched_mismatched_rows`).  Golden signatures are NOT
        part of the key: they depend on each model's weights and stay
        per-view.
        """
        if self._structure_key is None:
            config = self.config
            self._structure_key = (
                config.group_size,
                config.signature_bits,
                config.use_interleave,
                config.interleave_offset,
                config.use_masking,
                config.key_bits,
                config.secret_seed,
                tuple(self.layer_names),
                tuple(self._num_weights),
            )
        return self._structure_key

    # -- row bookkeeping -------------------------------------------------------
    def row_range(self, layer_name: str) -> Tuple[int, int]:
        """``[start, end)`` global row range of one layer's groups."""
        position = self.layer_names.index(layer_name)
        return int(self._row_starts[position]), int(self._row_starts[position + 1])

    def _layer_flat(self, layer_map: Dict[str, Module], position: int) -> np.ndarray:
        name = self.layer_names[position]
        if name not in layer_map:
            raise ProtectionError(f"Protected layer {name!r} missing from model")
        flat = layer_map[name].qweight.reshape(-1)
        if flat.size != self._num_weights[position]:
            raise ProtectionError(
                f"Layer {name!r} has {flat.size} weights, expected {self._num_weights[position]}"
            )
        return flat

    # -- recomputation ---------------------------------------------------------
    def group_sums(self, model: Module, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Masked checksums for the given global rows (``None`` = every group)."""
        layer_map = dict(quantized_layers(model))
        if rows is None:
            sums = np.empty(self.total_groups, dtype=np.int64)
            for position in range(len(self.layer_names)):
                flat = self._layer_flat(layer_map, position)
                start, end = self._row_starts[position], self._row_starts[position + 1]
                gathered = flat[self._indices[position]].astype(np.int64)
                sums[start:end] = (gathered * self._sign_masks[position]).sum(axis=1)
            return sums
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and not (0 <= rows.min() and rows.max() < self.total_groups):
            raise ProtectionError(f"global rows out of range ({self.total_groups} groups)")
        sums = np.empty(rows.size, dtype=np.int64)
        owning_layer = np.searchsorted(self._row_starts, rows, side="right") - 1
        for position in np.unique(owning_layer):
            where = np.nonzero(owning_layer == position)[0]
            local = rows[where] - self._row_starts[position]
            flat = self._layer_flat(layer_map, position)
            gathered = flat[self._indices[position][local]].astype(np.int64)
            sums[where] = (gathered * self._sign_masks[position][local]).sum(axis=1)
        return sums

    def signatures(self, model: Module, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Current signatures for the given global rows, in row order."""
        return signature_from_sums(self.group_sums(model, rows), self.config.signature_bits)

    def mismatched_rows(self, model: Module, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Global rows (among ``rows``) whose current signature differs from golden."""
        current = self.signatures(model, rows)
        if rows is None:
            return np.nonzero(current != self.golden)[0].astype(np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        return rows[current != self.golden[rows]]

    def rows_to_layer_groups(self, rows: np.ndarray) -> Dict[str, np.ndarray]:
        """Translate global rows into per-layer group indices (all layers present).

        Layers with no listed row map to an empty array, matching the shape
        of a full :class:`~repro.core.detector.DetectionReport`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            # Clean scans dominate a healthy fleet's ticks; skip the per-layer
            # unique/compare work and hand out the shared empty arrays.
            return dict(self._empty_groups)
        result: Dict[str, np.ndarray] = {}
        for position, name in enumerate(self.layer_names):
            start, end = self._row_starts[position], self._row_starts[position + 1]
            inside = rows[(rows >= start) & (rows < end)]
            result[name] = np.unique(inside - start).astype(np.int64)
        return result


def batched_mismatched_rows(
    views: Sequence[FusedSignatures],
    layer_maps: Sequence[Mapping[str, Module]],
    rows: np.ndarray,
) -> List[np.ndarray]:
    """Verify the same global-row slice of several *structurally identical*
    models in one vectorized pass.

    ``views[i]`` is model *i*'s fused view and ``layer_maps[i]`` its
    ``{layer_name: quantized layer}`` mapping.  All views must share a
    :meth:`FusedSignatures.structure_key` — they then share gather indices
    and sign masks, so the per-layer recomputation stacks every model's
    gathered weights into one ``(models, rows, group_size)`` tensor and the
    masked multiply / row-sum / binarize / golden-compare each run once for
    the whole batch instead of once per model.  This is the kernel behind
    the fleet engine's cross-model batched stepping
    (:meth:`repro.core.fleet.VerificationEngine.tick`): for a fleet of
    same-architecture models the per-pass NumPy dispatch overhead is paid
    once, not ``k`` times.

    Returns one flagged-row array per model, identical to what
    ``views[i].mismatched_rows(model_i, rows)`` would report.
    """
    if not views:
        raise ProtectionError("batched_mismatched_rows needs at least one view")
    if len(views) != len(layer_maps):
        raise ProtectionError(
            f"got {len(views)} views but {len(layer_maps)} layer maps"
        )
    reference = views[0]
    key = reference.structure_key()
    for view in views[1:]:
        if view.structure_key() != key:
            raise ProtectionError(
                "batched verification needs structurally identical models; "
                "structure keys differ"
            )
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return [rows.copy() for _ in views]
    if not (0 <= rows.min() and rows.max() < reference.total_groups):
        raise ProtectionError(
            f"global rows out of range ({reference.total_groups} groups)"
        )
    num_models = len(views)
    sums = np.empty((num_models, rows.size), dtype=np.int64)
    owning_layer = np.searchsorted(reference._row_starts, rows, side="right") - 1
    for position in np.unique(owning_layer):
        where = np.nonzero(owning_layer == position)[0]
        local = rows[where] - reference._row_starts[position]
        indices = reference._indices[position][local]
        mask = reference._sign_masks[position][local]
        gathered = np.empty((num_models,) + indices.shape, dtype=np.int64)
        for index, layer_map in enumerate(layer_maps):
            gathered[index] = reference._layer_flat(layer_map, position)[indices]
        sums[:, where] = (gathered * mask[None, :, :]).sum(axis=2)
    current = signature_from_sums(
        sums.reshape(-1), reference.config.signature_bits
    ).reshape(num_models, rows.size)
    golden = np.stack([view.golden[rows] for view in views])
    mismatched = current != golden
    if not mismatched.any():
        empty = rows[:0]
        return [empty.copy() for _ in views]
    return [rows[mismatched[index]] for index in range(num_models)]


def flip_group_index(store: SignatureStore, layer_name: str, flat_index: int) -> Tuple[str, int]:
    """The ``(layer, group)`` a given weight index belongs to under the store's layout."""
    entry = store.layer(layer_name)
    return layer_name, entry.layout.group_of(flat_index)
