"""RADAR: the run-time detection and accuracy-recovery scheme (the paper's contribution).

Pipeline (Sections IV and V of the paper):

1. **Offline** — for every quantized layer, the weights are interleaved
   (:mod:`repro.core.interleave`), masked with a per-layer secret key
   (:mod:`repro.core.masking`), summed per group and binarized into a 2-bit
   signature (:mod:`repro.core.checksum`).  The golden signatures live in a
   :class:`repro.core.signature.SignatureStore` (modelling secure on-chip
   SRAM).
2. **Run time** — :class:`repro.core.detector.RadarDetector` recomputes the
   signatures on the weights streamed from DRAM and flags mismatching
   groups; :mod:`repro.core.recovery` zeroes the weights of flagged groups
   (after de-interleaving) to restore accuracy.

:class:`repro.core.protector.ModelProtector` ties everything together, and
:class:`repro.core.runtime.ProtectedInference` embeds the check in the
inference path as the paper's gem5 experiment does.

Several run-time extensions go beyond the paper's stop-the-world scan:

* :class:`repro.core.scheduler.ScanScheduler` — amortized scanning: the
  model's signature groups are partitioned into shards (on the vectorized
  :class:`repro.core.signature.FusedSignatures` fast path) and each forward
  pass verifies only a bounded slice, so the whole model is verified within
  one rotation at a fraction of the per-pass cost.
* :mod:`repro.core.cost` — scan cost models that price a verification slice
  in seconds (analytic, from the memsim timing constants, or measured via an
  EWMA), so slices can be sized from a *latency budget* rather than a shard
  count (``ScanScheduler.from_budget``).
* :mod:`repro.core.planner` — pluggable shard-selection planners behind the
  scheduler's policies, including flip-rate-tuned priority-exposure ordering.
* :class:`repro.core.fleet.VerificationEngine` — the fleet engine: one work
  queue of scan slices drawn from all registered models, coalesced into
  batched cross-model vectorized passes, with an explicit
  PROTECTED → FLAGGED → RECOVERING → REPROTECTING → PROTECTED state machine
  and a ``detection`` / ``recovery`` / ``reprotect`` / ``budget_exhausted``
  event bus, so the detect→recover→reprotect loop is engine policy rather
  than caller discipline.
* :class:`repro.core.service.ProtectionService` — the backward-compatible
  façade over the engine: a registry that advances every model's scan
  rotation per serving tick and optionally splits one fleet-wide latency
  budget across the registry by exposure and flip history.
"""

from repro.core.config import RadarConfig
from repro.core.cost import (
    AnalyticScanCostModel,
    BudgetPlan,
    CacheAwareScanCostModel,
    MeasuredScanCostModel,
    ScanCostModel,
    plan_rotation,
)
from repro.core.planner import (
    FullScanPlanner,
    JitteredPlanner,
    PriorityExposurePlanner,
    RoundRobinPlanner,
    ShardView,
    VerificationPlanner,
)
from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.core.checksum import compute_group_sums, signature_from_sums
from repro.core.signature import (
    AttachedModelPlane,
    FusedSignatures,
    LayerSignatures,
    ScanScratch,
    SharedPlaneSpec,
    SharedSegmentSpec,
    SignatureStore,
    batched_mismatched_rows,
    shared_memory_available,
    split_by_padding_waste,
    stacked_mismatched_rows,
)
from repro.core.detector import DetectionReport, RadarDetector, count_detected_flips
from repro.core.procpool import (
    FaultInjection,
    FaultKind,
    FaultPlan,
    ProcessScanPool,
    ScanTask,
    ScanTaskItem,
    ScanTaskResult,
)
from repro.core.recovery import RecoveryPolicy, RecoveryReport, recover_model
from repro.core.scheduler import (
    ScanPassResult,
    ScanPolicy,
    ScanScheduler,
    ShardInfo,
    SliceDescriptor,
)
from repro.core.protector import ModelProtector, ProtectionSummary
from repro.core.runtime import InferenceOutcome, ProtectedInference
from repro.core.fleet import (
    FLEET_SCOPE,
    EngineTickOutcome,
    EventBus,
    FleetEvent,
    FleetEventType,
    ManagedModel,
    ProtectionState,
    VerificationEngine,
)
from repro.core.service import ProtectionService, ServiceStepOutcome
from repro.core.streaming import StreamEvent, StreamReport, StreamingVerifier

__all__ = [
    "RadarConfig",
    "ScanCostModel",
    "AnalyticScanCostModel",
    "CacheAwareScanCostModel",
    "MeasuredScanCostModel",
    "BudgetPlan",
    "plan_rotation",
    "VerificationPlanner",
    "ShardView",
    "FullScanPlanner",
    "RoundRobinPlanner",
    "PriorityExposurePlanner",
    "JitteredPlanner",
    "GroupLayout",
    "SecretKey",
    "compute_group_sums",
    "signature_from_sums",
    "LayerSignatures",
    "SignatureStore",
    "FusedSignatures",
    "ScanScratch",
    "batched_mismatched_rows",
    "stacked_mismatched_rows",
    "split_by_padding_waste",
    "shared_memory_available",
    "SharedSegmentSpec",
    "SharedPlaneSpec",
    "AttachedModelPlane",
    "ProcessScanPool",
    "ScanTask",
    "ScanTaskItem",
    "ScanTaskResult",
    "FaultKind",
    "FaultInjection",
    "FaultPlan",
    "RadarDetector",
    "DetectionReport",
    "count_detected_flips",
    "RecoveryPolicy",
    "RecoveryReport",
    "recover_model",
    "ScanPolicy",
    "ScanPassResult",
    "ScanScheduler",
    "ShardInfo",
    "SliceDescriptor",
    "ModelProtector",
    "ProtectionSummary",
    "ProtectedInference",
    "InferenceOutcome",
    "ProtectionService",
    "ManagedModel",
    "ServiceStepOutcome",
    "VerificationEngine",
    "ProtectionState",
    "FleetEvent",
    "FleetEventType",
    "FLEET_SCOPE",
    "EventBus",
    "EngineTickOutcome",
    "StreamingVerifier",
    "StreamEvent",
    "StreamReport",
]
