"""Process-pool scan execution over shared-memory weight planes.

The thread-pooled fleet engine is GIL-bound: its per-bucket kernel passes
are NumPy-heavy but short, so a 16-model fleet never uses much more than
one core of scan CPU regardless of ``workers``.  This module is the other
half of the PR that lifts that ceiling — :class:`ProcessScanPool` runs the
bucketed stacked kernel in **worker processes** that attach read-only to
the planes the coordinator published via
:meth:`~repro.core.signature.FusedSignatures.share`.

Division of labour (deliberately asymmetric):

* the **coordinator** (the engine process) owns model lifecycle, recovery,
  re-sign, telemetry, plane mutation and publication.  It ships workers
  nothing but plain data: a :class:`ScanTask` holds per-model
  :class:`~repro.core.signature.SharedPlaneSpec` descriptors and
  ``(start, stop)`` row ranges (scheduler shards are contiguous by
  construction, so a slice is a handful of ranges, not a row array);
* a **worker** attaches each model's segments once, caches the attachment
  keyed by model name, and re-attaches when a task carries a newer
  ``generation`` (the republish protocol: a re-sign unlinks the old
  segments and publishes fresh names, so a stale cache entry cannot even
  be read accidentally — the old name is gone).  Workers send back only
  the mismatched-row indices; weights never cross the queue in either
  direction.

The pool is **supervised**: the coordinator is the only scheduler.  Each
worker owns a private task queue and is fed at most one outstanding task,
so every in-flight task has a known lease (which worker, which attempt,
when it expires).  A dead worker is respawned in place and its leased
task retried; a task whose lease expires (a wedged or silently dropped
result) is retried on another worker; a task that exhausts
``max_task_retries`` is **quarantined** — executed inline by the
coordinator through the same bit-identical sequential kernel
(:func:`~repro.core.signature.stacked_mismatched_rows`), so a poison
bucket degrades one tick instead of wedging the fleet.  Scan tasks are
read-only and idempotent, which is what makes retry-with-duplicates safe:
the first valid result per task wins and stragglers are discarded.

Determinism under test comes from :class:`FaultPlan` — a seeded schedule
of worker kills, task delays, dropped results and malformed wire payloads
keyed by ``(task_id, attempt)``.  Task ids are monotonic across ``run``
calls, so a plan addresses exactly one delivery of one task no matter how
many ticks or retries happen around it.

The pool prefers the ``fork`` start method (cheap, inherits the imported
modules) and falls back to the platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import random
import time
from collections import deque
from enum import Enum
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.signature import (
    AttachedModelPlane,
    ScanScratch,
    SharedPlaneSpec,
    stacked_mismatched_rows,
)
from repro.errors import ProtectionError
from repro.telemetry.trace import wire_span


class ScanTaskItem(NamedTuple):
    """One model's share of a task: where to attach and which rows to scan."""

    model: str
    spec: SharedPlaneSpec
    row_ranges: Tuple[Tuple[int, int], ...]


class ScanTask(NamedTuple):
    """One work unit: a kernel-key bucket (or a split of one).

    ``homogeneous`` is the coordinator's structure-key knowledge travelling
    with the task — workers cannot cheaply recompute it (see
    :func:`~repro.core.signature.stacked_mismatched_rows`).  ``attempt``
    counts deliveries of this task (0 = first); the supervisor bumps it on
    every retry so a :class:`FaultPlan` can address one delivery exactly.
    ``trace`` is the propagated span context, ``(trace_id, parent_span_id)``
    — ``None`` when tracing is off, in which case the wire format is
    byte-identical to the untraced protocol.
    """

    task_id: int
    items: Tuple[ScanTaskItem, ...]
    homogeneous: bool
    attempt: int = 0
    trace: Optional[Tuple[str, str]] = None


class ScanTaskResult(NamedTuple):
    """What comes back: flagged rows per task item, or one error string.

    ``worker`` is the index of the worker lane that produced the result,
    or ``-1`` when the coordinator executed the task inline (quarantine).
    ``spans`` carries the worker-side finished span dicts (built with
    :func:`~repro.telemetry.trace.wire_span`) when the task's trace
    envelope was set; the coordinator ingests them into its flight
    recorder after validating the payload.
    """

    task_id: int
    worker: int
    flagged: Optional[List[np.ndarray]]
    error: Optional[str]
    spans: Tuple[Dict, ...] = ()


# -- deterministic fault injection ------------------------------------------------


class FaultKind(str, Enum):
    """What a :class:`FaultInjection` does to one task delivery."""

    #: The worker exits hard (``os._exit``) on dequeue — a simulated
    #: SIGKILL: no result, no cleanup, the queue feeder dies mid-flight.
    KILL = "kill"
    #: The worker sleeps ``delay_s`` before scanning, then replies
    #: normally — exercises lease expiry and duplicate-result discard.
    DELAY = "delay"
    #: The worker consumes the task and never replies — a lost result.
    DROP = "drop"
    #: The worker replies with a corrupted wire payload (the flagged-row
    #: list is truncated and type-poisoned) under the real task id.
    MALFORM = "malform"


class FaultInjection(NamedTuple):
    """One planned fault: fires when task ``task_id`` is delivered the
    ``attempt``-th time."""

    task_id: int
    kind: FaultKind
    attempt: int = 0
    delay_s: float = 0.0


class FaultPlan:
    """A deterministic schedule of faults keyed by ``(task_id, attempt)``.

    Plans are immutable and picklable; the coordinator ships the whole plan
    to every worker at spawn (respawned workers get the same plan), so a
    fault fires wherever its task delivery lands.  Because the pool's task
    ids are monotonic across ``run`` calls and the engine's task batching
    is deterministic, the same plan against the same fleet produces the
    same fault sequence on every run — which is what lets chaos tests
    assert bit-identical verdicts.
    """

    def __init__(self, injections: Sequence[FaultInjection] = ()) -> None:
        self._by_key: Dict[Tuple[int, int], FaultInjection] = {}
        for injection in injections:
            key = (int(injection.task_id), int(injection.attempt))
            if key in self._by_key:
                raise ProtectionError(
                    f"duplicate fault injection for task {key[0]} attempt {key[1]}"
                )
            self._by_key[key] = injection

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_tasks: int,
        kill_rate: float = 0.0,
        delay_rate: float = 0.0,
        drop_rate: float = 0.0,
        malform_rate: float = 0.0,
        poison_rate: float = 0.0,
        poison_kills: int = 3,
        max_delay_s: float = 0.02,
    ) -> "FaultPlan":
        """A reproducible plan over task ids ``0 .. num_tasks - 1``.

        Each task draws one fault band (rates must sum to <= 1; the
        remainder is fault-free).  ``poison_rate`` tasks kill their worker
        on ``poison_kills`` consecutive deliveries — sized above the pool's
        ``max_task_retries``, that forces the inline-quarantine path.
        ``random.Random`` keeps the draw platform-stable.
        """
        if num_tasks < 0:
            raise ProtectionError(f"num_tasks must be >= 0, got {num_tasks}")
        rates = (kill_rate, delay_rate, drop_rate, malform_rate, poison_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1:
            raise ProtectionError(
                f"fault rates must be non-negative and sum to <= 1, got {rates}"
            )
        if poison_kills < 1:
            raise ProtectionError(f"poison_kills must be >= 1, got {poison_kills}")
        rng = random.Random(seed)
        injections: List[FaultInjection] = []
        for task_id in range(num_tasks):
            # One fixed-width draw pair per task keeps the stream aligned
            # regardless of which band (if any) the task lands in.
            roll = rng.random()
            delay_s = rng.uniform(0.25 * max_delay_s, max_delay_s)
            edge = kill_rate
            if roll < edge:
                injections.append(FaultInjection(task_id, FaultKind.KILL))
                continue
            edge += delay_rate
            if roll < edge:
                injections.append(
                    FaultInjection(task_id, FaultKind.DELAY, delay_s=delay_s)
                )
                continue
            edge += drop_rate
            if roll < edge:
                injections.append(FaultInjection(task_id, FaultKind.DROP))
                continue
            edge += malform_rate
            if roll < edge:
                injections.append(FaultInjection(task_id, FaultKind.MALFORM))
                continue
            edge += poison_rate
            if roll < edge:
                injections.extend(
                    FaultInjection(task_id, FaultKind.KILL, attempt=attempt)
                    for attempt in range(poison_kills)
                )
        return cls(injections)

    def lookup(self, task_id: int, attempt: int) -> Optional[FaultInjection]:
        return self._by_key.get((int(task_id), int(attempt)))

    @property
    def injections(self) -> List[FaultInjection]:
        return [self._by_key[key] for key in sorted(self._by_key)]

    def __len__(self) -> int:
        return len(self._by_key)

    def __getstate__(self) -> Dict:
        return {"by_key": self._by_key}

    def __setstate__(self, state: Dict) -> None:
        self._by_key = dict(state["by_key"])


def materialize_rows(row_ranges: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Expand ``(start, stop)`` ranges back into the global row array."""
    if not row_ranges:
        return np.empty(0, dtype=np.int64)
    if len(row_ranges) == 1:
        start, stop = row_ranges[0]
        return np.arange(start, stop, dtype=np.int64)
    return np.concatenate(
        [np.arange(start, stop, dtype=np.int64) for start, stop in row_ranges]
    )


def _run_task(
    task: ScanTask,
    attachments: Dict[str, AttachedModelPlane],
    scratch: ScanScratch,
) -> List[np.ndarray]:
    planes: List[np.ndarray] = []
    indices: List[np.ndarray] = []
    signs: List[np.ndarray] = []
    goldens: List[np.ndarray] = []
    rows: List[np.ndarray] = []
    structures: List[Optional[object]] = []
    for item in task.items:
        attachment = attachments.get(item.model)
        if (
            attachment is not None
            and attachment.generation != item.spec.generation
        ):
            # Stale generation: the coordinator re-signed and republished.
            attachment.close()
            attachment = None
        if attachment is None:
            attachment = AttachedModelPlane(item.spec)
            attachments[item.model] = attachment
        planes.append(attachment.plane)
        indices.append(attachment.indices)
        signs.append(attachment.signs)
        goldens.append(attachment.golden)
        rows.append(materialize_rows(item.row_ranges))
        structures.append(attachment.structure)
    spec = task.items[0].spec
    return stacked_mismatched_rows(
        planes,
        indices,
        signs,
        goldens,
        rows,
        group_size=spec.group_size,
        signature_bits=spec.signature_bits,
        scratch=scratch,
        homogeneous=task.homogeneous,
        structures=structures,
    )


def _worker_main(worker_index: int, tasks, results, fault_plan=None) -> None:
    """Worker loop: attach-cached bucket scans until the ``None`` sentinel.

    ``fault_plan`` is the chaos hook: a planned fault for this exact
    ``(task_id, attempt)`` delivery fires here, between dequeue and reply —
    the only place a real crash, hang or lost message could happen.
    """
    attachments: Dict[str, AttachedModelPlane] = {}
    scratch = ScanScratch()
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            fault = (
                fault_plan.lookup(task.task_id, task.attempt)
                if fault_plan is not None
                else None
            )
            if fault is not None:
                if fault.kind is FaultKind.KILL:
                    # A real SIGKILL runs no handlers; mirror that exactly.
                    os._exit(17)
                if fault.delay_s > 0:
                    time.sleep(fault.delay_s)
                if fault.kind is FaultKind.DROP:
                    continue

            def _scan_span(duration_s, error=None):
                # The worker cannot hold a live Span (the recorder lives in
                # the coordinator); it ships a finished span dict parented
                # to the task span named in the trace envelope.
                if task.trace is None:
                    return ()
                trace_id, parent_id = task.trace
                attrs = {
                    "task": task.task_id,
                    "attempt": task.attempt,
                    "models": len(task.items),
                }
                if fault is not None:
                    attrs["fault"] = fault.kind.value
                if error is not None:
                    attrs["error"] = error
                return (
                    wire_span(
                        "worker.scan",
                        trace_id,
                        parent_id,
                        started_unix,
                        duration_s,
                        f"process-{worker_index}",
                        attrs,
                    ),
                )

            started_unix = time.time()
            started = time.perf_counter()
            try:
                flagged = _run_task(task, attachments, scratch)
            except Exception as error:  # ship the failure, keep serving
                message = f"{type(error).__name__}: {error}"
                results.put(
                    ScanTaskResult(
                        task.task_id,
                        worker_index,
                        None,
                        message,
                        _scan_span(time.perf_counter() - started, message),
                    )
                )
                continue
            duration_s = time.perf_counter() - started
            if fault is not None and fault.kind is FaultKind.MALFORM:
                # Truncated and type-poisoned, but under the real task id —
                # corruption the coordinator must attribute and retry.
                flagged = list(flagged[:-1]) + ["corrupt-wire-payload"]
            results.put(
                ScanTaskResult(
                    task.task_id,
                    worker_index,
                    flagged,
                    None,
                    _scan_span(duration_s),
                )
            )
    finally:
        for attachment in attachments.values():
            attachment.close()


class _Job:
    """Coordinator-side lease record of one task inside one ``run``."""

    __slots__ = (
        "task",
        "caller_id",
        "attempt",
        "worker",
        "lease_expires",
        "state",
        "span",
    )

    def __init__(self, task: ScanTask, caller_id: int) -> None:
        self.task = task
        self.caller_id = caller_id
        self.attempt = 0
        self.worker: Optional[int] = None
        self.lease_expires = 0.0
        self.state = "pending"  # pending -> inflight -> done
        #: The per-task ``scan.task`` span (None when tracing is off);
        #: worker scans, retries and quarantine fallbacks parent to it.
        self.span = None


#: Result-queue poll interval; also the worker-death detection latency.
_POLL_S = 0.02

#: Keys of :attr:`ProcessScanPool.stats`, all starting at zero.
_STAT_KEYS = (
    "worker_restarts",
    "task_retries",
    "tasks_quarantined",
    "stale_results_dropped",
    "malformed_results",
    "worker_errors",
    "faults_injected",
)


class ProcessScanPool:
    """A supervised, self-healing set of scan worker processes.

    Workers are started eagerly (fork is cheap; spawn pays its import cost
    once here rather than on the first tick) and live until :meth:`close`.
    :meth:`run` is synchronous by design — the engine's tick is the unit
    of coordination, and lifecycle decisions need every bucket's verdict.

    Supervision policy (see the module docstring): per-worker task queues
    with at most one outstanding lease each, liveness polling with in-place
    respawn, bounded retries with linear backoff, inline quarantine after
    ``max_task_retries``, and a per-``run`` deadline that scales with task
    count (``timeout_s`` is per task, floored at ``min_timeout_s``).
    """

    def __init__(
        self,
        processes: int,
        timeout_s: float = 15.0,
        min_timeout_s: float = 60.0,
        max_task_retries: int = 2,
        lease_timeout_s: float = 5.0,
        retry_backoff_s: float = 0.01,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if processes < 1:
            raise ProtectionError(f"processes must be >= 1, got {processes}")
        if not timeout_s > 0:
            raise ProtectionError(f"timeout_s must be positive, got {timeout_s}")
        if not min_timeout_s > 0:
            raise ProtectionError(
                f"min_timeout_s must be positive, got {min_timeout_s}"
            )
        if max_task_retries < 0:
            raise ProtectionError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if not lease_timeout_s > 0:
            raise ProtectionError(
                f"lease_timeout_s must be positive, got {lease_timeout_s}"
            )
        if retry_backoff_s < 0:
            raise ProtectionError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.timeout_s = float(timeout_s)
        self.min_timeout_s = float(min_timeout_s)
        self.max_task_retries = int(max_task_retries)
        self.lease_timeout_s = float(lease_timeout_s)
        self.retry_backoff_s = float(retry_backoff_s)
        self.fault_plan = fault_plan
        self.stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self._context = multiprocessing.get_context(method)
        # One task queue per worker: the lease (which worker holds which
        # task) is decided by the coordinator, not by whoever dequeues
        # first — a shared queue cannot attribute a dead worker's loss.
        self._task_queues = [self._context.Queue() for _ in range(processes)]
        self._results = self._context.Queue()
        self._workers = [self._spawn(index) for index in range(processes)]
        # Quarantine executes inline against the same published segments the
        # workers read (publisher-side attachment is safe; see
        # AttachedModelPlane) — same plain-array kernel, same verdicts.
        self._inline_attachments: Dict[str, AttachedModelPlane] = {}
        self._inline_scratch = ScanScratch()
        self._next_task_id = 0
        self._closed = False

    def _spawn(self, index: int):
        worker = self._context.Process(
            target=_worker_main,
            args=(index, self._task_queues[index], self._results, self.fault_plan),
            daemon=True,
            name=f"repro-scan-{index}",
        )
        worker.start()
        return worker

    def __len__(self) -> int:
        return len(self._workers)

    def alive_workers(self) -> int:
        """How many worker processes are currently alive."""
        return sum(1 for worker in self._workers if worker.is_alive())

    def fault_stats(self) -> Dict[str, int]:
        """Snapshot of the supervision counters (copies; safe to mutate)."""
        return dict(self.stats)

    # -- supervision ------------------------------------------------------------
    def _drain_stale_results(self) -> None:
        # An aborted run may have left straggler results (or a crashed
        # worker's partial flush) in the queue; monotonic task ids already
        # make them unmatchable, draining keeps the queue bounded.
        while True:
            try:
                self._results.get_nowait()
            except queue_module.Empty:
                return
            self.stats["stale_results_dropped"] += 1

    def _respawn(self, index: int) -> None:
        self._workers[index].join(timeout=0)
        self.stats["worker_restarts"] += 1
        self._workers[index] = self._spawn(index)

    def run(
        self,
        tasks: Sequence[ScanTask],
        tracer=None,
        parent=None,
    ) -> Dict[int, ScanTaskResult]:
        """Execute every task and return results keyed by the caller's ids.

        Task ids are re-stamped with the pool's monotonic counter on the
        wire (results are keyed back to the ids the caller passed), so a
        straggler from a previous run can never be matched to a new task.
        Raises :class:`ProtectionError` only when the scaled deadline
        expires or a quarantined task fails even inline — every other
        fault (worker death, wedged task, error result, malformed payload)
        is absorbed by retry, respawn or quarantine.

        ``tracer``/``parent`` thread span context through the pool: each
        task gets a ``scan.task`` span (a child of ``parent``, normally
        the engine's tick span), its trace identity rides the task
        envelope so worker-side ``worker.scan`` spans parent to it, and
        retries, lease expiries and quarantine fallbacks leave marker
        spans under the same task span.  With ``tracer=None`` the wire
        protocol is unchanged.
        """
        if self._closed:
            raise ProtectionError("ProcessScanPool is closed")
        if not tasks:
            return {}
        self._drain_stale_results()
        for index, worker in enumerate(self._workers):
            if not worker.is_alive():  # died idle between runs
                self._respawn(index)
        jobs: Dict[int, _Job] = {}
        pending: Deque[int] = deque()
        for task in tasks:
            internal = self._next_task_id
            self._next_task_id += 1
            wire_task = task._replace(task_id=internal)
            job = _Job(wire_task, task.task_id)
            if tracer is not None:
                job.span = tracer.span(
                    "scan.task",
                    parent=parent,
                    attrs={"task": task.task_id, "models": len(task.items)},
                )
                job.task = wire_task._replace(
                    trace=(job.span.trace_id, job.span.span_id)
                )
            jobs[internal] = job
            pending.append(internal)
        effective_s = max(self.min_timeout_s, self.timeout_s * len(tasks))
        deadline = time.monotonic() + effective_s
        load = [0] * len(self._workers)
        collected: Dict[int, ScanTaskResult] = {}

        def release(job: _Job) -> None:
            if job.worker is not None:
                load[job.worker] = max(0, load[job.worker] - 1)
                job.worker = None

        def finish(job: _Job, result: ScanTaskResult) -> None:
            release(job)
            job.state = "done"
            collected[job.caller_id] = result
            if job.span is not None:
                job.span.set_attr("worker", result.worker)
                job.span.set_attr("attempt", job.attempt)
                job.span.finish()

        def quarantine(job: _Job, reason: str) -> None:
            self.stats["tasks_quarantined"] += 1
            task = job.task._replace(attempt=job.attempt)
            q_span = (
                tracer.span(
                    "scan.quarantine",
                    parent=job.span.context,
                    attrs={"reason": reason, "attempt": job.attempt},
                )
                if job.span is not None
                else None
            )
            try:
                flagged = _run_task(
                    task, self._inline_attachments, self._inline_scratch
                )
            except Exception as error:
                if q_span is not None:
                    q_span.set_attr(
                        "error", f"{type(error).__name__}: {error}"
                    )
                    q_span.finish()
                raise ProtectionError(
                    f"scan task {job.caller_id} failed even in coordinator "
                    f"quarantine after {job.attempt} deliveries "
                    f"(last fault: {reason}): {type(error).__name__}: {error}"
                ) from error
            if q_span is not None:
                q_span.finish()
            finish(job, ScanTaskResult(job.caller_id, -1, flagged, None))

        def retry(job: _Job, reason: str) -> None:
            if job.state == "done":
                return
            release(job)
            job.attempt += 1
            if job.attempt > self.max_task_retries:
                quarantine(job, reason)
                return
            self.stats["task_retries"] += 1
            if job.span is not None:
                # A zero-duration marker: the re-queue decision itself, so
                # lease expiries and worker deaths show up on the timeline.
                tracer.span(
                    "scan.retry",
                    parent=job.span.context,
                    attrs={"reason": reason, "attempt": job.attempt},
                ).finish()
            if self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s * job.attempt)
            job.state = "pending"
            pending.append(job.task.task_id)

        def dispatch() -> None:
            while pending:
                target = next(
                    (
                        index
                        for index, worker in enumerate(self._workers)
                        if load[index] == 0 and worker.is_alive()
                    ),
                    None,
                )
                if target is None:
                    return
                internal = pending.popleft()
                job = jobs[internal]
                if job.state != "pending":
                    continue
                if (
                    self.fault_plan is not None
                    and self.fault_plan.lookup(internal, job.attempt) is not None
                ):
                    self.stats["faults_injected"] += 1
                job.state = "inflight"
                job.worker = target
                job.lease_expires = time.monotonic() + self.lease_timeout_s
                load[target] += 1
                self._task_queues[target].put(
                    job.task._replace(attempt=job.attempt)
                )

        dispatch()
        while len(collected) < len(tasks):
            try:
                payload = self._results.get(timeout=_POLL_S)
            except queue_module.Empty:
                payload = None
            if payload is not None:
                self._absorb_result(payload, jobs, finish, retry, tracer)
            now = time.monotonic()
            for index, worker in enumerate(self._workers):
                if worker.is_alive():
                    continue
                self._respawn(index)
                load[index] = 0
                for job in list(jobs.values()):
                    if job.state == "inflight" and job.worker == index:
                        retry(job, "worker died")
            for job in list(jobs.values()):
                if job.state == "inflight" and now > job.lease_expires:
                    retry(job, "lease expired")
            if len(collected) < len(tasks) and time.monotonic() > deadline:
                raise ProtectionError(
                    f"scan pool deadline expired: {len(collected)} of "
                    f"{len(tasks)} task(s) finished within {effective_s:.1f}s "
                    f"({self.timeout_s:.1f}s per task, floor "
                    f"{self.min_timeout_s:.1f}s)"
                )
            dispatch()
        return collected

    def _absorb_result(self, payload, jobs, finish, retry, tracer=None) -> None:
        """Validate one wire payload; first valid result per task wins."""
        task_id = getattr(payload, "task_id", None)
        job = jobs.get(task_id) if isinstance(task_id, int) else None
        if job is not None and tracer is not None:
            # Ingest even for done-state jobs: a lease-expired duplicate's
            # scan really ran, and its parent span is exported anyway.
            # Stragglers from *aborted* runs (job is None) are dropped —
            # their parents never reached the recorder.
            tracer.ingest(getattr(payload, "spans", ()))
        if job is None or job.state == "done":
            # A straggler from a lease-expired duplicate or an aborted run.
            self.stats["stale_results_dropped"] += 1
            return
        if not isinstance(payload, ScanTaskResult):
            self.stats["malformed_results"] += 1
            retry(job, "malformed wire payload")
            return
        if payload.error is not None:
            self.stats["worker_errors"] += 1
            retry(job, f"worker error: {payload.error}")
            return
        flagged = _validated_flagged(job.task, payload.flagged)
        if flagged is None:
            self.stats["malformed_results"] += 1
            retry(job, "malformed flagged payload")
            return
        worker = payload.worker if isinstance(payload.worker, int) else -1
        finish(job, ScanTaskResult(job.caller_id, worker, flagged, None))

    def close(self, join_timeout_s: float = 5.0) -> None:
        """Stop the workers and release the queues (idempotent).

        Safe against crashed workers: the sentinel fan-out never blocks (a
        dead worker's queue feeder cannot absorb a blocking ``put``), and
        any worker that does not exit within ``join_timeout_s`` is
        terminated unconditionally.
        """
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put_nowait(None)
            except (OSError, ValueError, queue_module.Full):
                pass  # dead feeder or torn-down queue; terminate() below
        for worker in self._workers:
            worker.join(timeout=join_timeout_s)
            if worker.is_alive():  # pragma: no cover - wedged worker
                worker.terminate()
                worker.join(timeout=1.0)
        for attachment in self._inline_attachments.values():
            attachment.close()
        self._inline_attachments = {}
        for pipe in [*self._task_queues, self._results]:
            pipe.close()
            # The feeder threads may still hold buffered sentinels; never
            # block interpreter shutdown on them.
            pipe.cancel_join_thread()
        self._workers = []

    def __enter__(self) -> "ProcessScanPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close(join_timeout_s=0.5)
        except Exception:
            pass


def _validated_flagged(
    task: ScanTask, flagged: object
) -> Optional[List[np.ndarray]]:
    """The flagged-row lists if they are structurally sound, else ``None``."""
    if not isinstance(flagged, (list, tuple)) or len(flagged) != len(task.items):
        return None
    validated: List[np.ndarray] = []
    for rows in flagged:
        if (
            not isinstance(rows, np.ndarray)
            or rows.ndim != 1
            or not np.issubdtype(rows.dtype, np.integer)
        ):
            return None
        validated.append(rows)
    return validated
