"""Process-pool scan execution over shared-memory weight planes.

The thread-pooled fleet engine is GIL-bound: its per-bucket kernel passes
are NumPy-heavy but short, so a 16-model fleet never uses much more than
one core of scan CPU regardless of ``workers``.  This module is the other
half of the PR that lifts that ceiling — :class:`ProcessScanPool` runs the
bucketed stacked kernel in **worker processes** that attach read-only to
the planes the coordinator published via
:meth:`~repro.core.signature.FusedSignatures.share`.

Division of labour (deliberately asymmetric):

* the **coordinator** (the engine process) owns model lifecycle, recovery,
  re-sign, telemetry, plane mutation and publication.  It ships workers
  nothing but plain data: a :class:`ScanTask` holds per-model
  :class:`~repro.core.signature.SharedPlaneSpec` descriptors and
  ``(start, stop)`` row ranges (scheduler shards are contiguous by
  construction, so a slice is a handful of ranges, not a row array);
* a **worker** attaches each model's segments once, caches the attachment
  keyed by model name, and re-attaches when a task carries a newer
  ``generation`` (the republish protocol: a re-sign unlinks the old
  segments and publishes fresh names, so a stale cache entry cannot even
  be read accidentally — the old name is gone).  Workers send back only
  the mismatched-row indices; weights never cross the queue in either
  direction.

The pool prefers the ``fork`` start method (cheap, inherits the imported
modules) and falls back to the platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.signature import (
    AttachedModelPlane,
    ScanScratch,
    SharedPlaneSpec,
    stacked_mismatched_rows,
)
from repro.errors import ProtectionError


class ScanTaskItem(NamedTuple):
    """One model's share of a task: where to attach and which rows to scan."""

    model: str
    spec: SharedPlaneSpec
    row_ranges: Tuple[Tuple[int, int], ...]


class ScanTask(NamedTuple):
    """One work unit: a kernel-key bucket (or a split of one).

    ``homogeneous`` is the coordinator's structure-key knowledge travelling
    with the task — workers cannot cheaply recompute it (see
    :func:`~repro.core.signature.stacked_mismatched_rows`).
    """

    task_id: int
    items: Tuple[ScanTaskItem, ...]
    homogeneous: bool


class ScanTaskResult(NamedTuple):
    """What comes back: flagged rows per task item, or one error string."""

    task_id: int
    worker: int
    flagged: Optional[List[np.ndarray]]
    error: Optional[str]


def materialize_rows(row_ranges: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Expand ``(start, stop)`` ranges back into the global row array."""
    if not row_ranges:
        return np.empty(0, dtype=np.int64)
    if len(row_ranges) == 1:
        start, stop = row_ranges[0]
        return np.arange(start, stop, dtype=np.int64)
    return np.concatenate(
        [np.arange(start, stop, dtype=np.int64) for start, stop in row_ranges]
    )


def _run_task(
    task: ScanTask,
    attachments: Dict[str, AttachedModelPlane],
    scratch: ScanScratch,
) -> List[np.ndarray]:
    planes: List[np.ndarray] = []
    indices: List[np.ndarray] = []
    signs: List[np.ndarray] = []
    goldens: List[np.ndarray] = []
    rows: List[np.ndarray] = []
    structures: List[Optional[object]] = []
    for item in task.items:
        attachment = attachments.get(item.model)
        if (
            attachment is not None
            and attachment.generation != item.spec.generation
        ):
            # Stale generation: the coordinator re-signed and republished.
            attachment.close()
            attachment = None
        if attachment is None:
            attachment = AttachedModelPlane(item.spec)
            attachments[item.model] = attachment
        planes.append(attachment.plane)
        indices.append(attachment.indices)
        signs.append(attachment.signs)
        goldens.append(attachment.golden)
        rows.append(materialize_rows(item.row_ranges))
        structures.append(attachment.structure)
    spec = task.items[0].spec
    return stacked_mismatched_rows(
        planes,
        indices,
        signs,
        goldens,
        rows,
        group_size=spec.group_size,
        signature_bits=spec.signature_bits,
        scratch=scratch,
        homogeneous=task.homogeneous,
        structures=structures,
    )


def _worker_main(worker_index: int, tasks, results) -> None:
    """Worker loop: attach-cached bucket scans until the ``None`` sentinel."""
    attachments: Dict[str, AttachedModelPlane] = {}
    scratch = ScanScratch()
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            try:
                flagged = _run_task(task, attachments, scratch)
            except Exception as error:  # ship the failure, keep serving
                results.put(
                    ScanTaskResult(
                        task.task_id,
                        worker_index,
                        None,
                        f"{type(error).__name__}: {error}",
                    )
                )
            else:
                results.put(
                    ScanTaskResult(task.task_id, worker_index, flagged, None)
                )
    finally:
        for attachment in attachments.values():
            attachment.close()


class ProcessScanPool:
    """A fixed set of scan worker processes fed over a task queue.

    Workers are started eagerly (fork is cheap; spawn pays its import cost
    once here rather than on the first tick) and live until :meth:`close`.
    :meth:`run` is synchronous by design — the engine's tick is the unit
    of coordination, and lifecycle decisions need every bucket's verdict.
    """

    def __init__(self, processes: int, timeout_s: float = 120.0) -> None:
        if processes < 1:
            raise ProtectionError(f"processes must be >= 1, got {processes}")
        self.timeout_s = float(timeout_s)
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self._context = multiprocessing.get_context(method)
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._workers = [
            self._context.Process(
                target=_worker_main,
                args=(index, self._tasks, self._results),
                daemon=True,
                name=f"repro-scan-{index}",
            )
            for index in range(processes)
        ]
        for worker in self._workers:
            worker.start()
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    def run(self, tasks: Sequence[ScanTask]) -> Dict[int, ScanTaskResult]:
        """Execute every task and return results keyed by ``task_id``."""
        if self._closed:
            raise ProtectionError("ProcessScanPool is closed")
        for task in tasks:
            self._tasks.put(task)
        collected: Dict[int, ScanTaskResult] = {}
        deadline = time.monotonic() + self.timeout_s
        while len(collected) < len(tasks):
            try:
                result = self._results.get(timeout=0.1)
            except queue_module.Empty:
                if any(not worker.is_alive() for worker in self._workers):
                    raise ProtectionError(
                        "a scan worker process exited unexpectedly"
                    )
                if time.monotonic() > deadline:
                    raise ProtectionError(
                        f"scan workers did not finish within {self.timeout_s:.0f}s"
                    )
                continue
            if result.error is not None:
                raise ProtectionError(f"scan worker failed: {result.error}")
            collected[result.task_id] = result
        return collected

    def close(self, join_timeout_s: float = 5.0) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                break
        for worker in self._workers:
            worker.join(timeout=join_timeout_s)
            if worker.is_alive():  # pragma: no cover - wedged worker
                worker.terminate()
                worker.join(timeout=1.0)
        for pipe in (self._tasks, self._results):
            pipe.close()
            # The feeder threads may still hold buffered sentinels; never
            # block interpreter shutdown on them.
            pipe.cancel_join_thread()
        self._workers = []

    def __enter__(self) -> "ProcessScanPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close(join_timeout_s=0.5)
        except Exception:
            pass
