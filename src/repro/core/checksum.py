"""Addition checksum and signature binarization (Section IV.A).

For a group of ``G`` (masked) int8 weights the checksum is their integer
sum ``M``.  The 2-bit signature is

``S_A = floor(M / 256) mod 2`` and ``S_B = floor(M / 128) mod 2``

which in two's complement are simply bits 8 and 7 of ``M`` — i.e. the
binarization is a bit truncation, as the paper notes.  ``S_B`` acts as a
parity over the MSBs of the group (any single MSB flip moves ``M`` by
±128 and toggles it); ``S_A`` additionally catches same-direction double
flips.  A 3-bit signature appends ``S_C = floor(M / 64) mod 2`` to also
cover MSB-1 flips (Section VIII).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError

#: Divisors whose quotient parity forms the signature bits, most significant first.
_SIGNATURE_DIVISORS = (256, 128, 64)


def signature_from_sums(sums: np.ndarray, signature_bits: int = 2) -> np.ndarray:
    """Binarize checksums into packed signatures.

    Parameters
    ----------
    sums:
        Integer array of per-group checksums ``M``.
    signature_bits:
        Which bits make up the signature: 1 → ``(S_B,)`` (parity only),
        2 → ``(S_A, S_B)`` (the paper's default), 3 → ``(S_A, S_B, S_C)``.

    Returns
    -------
    ``uint8`` array of the same shape as ``sums`` with the signature bits
    packed MSB-first (e.g. for 2 bits the value is ``2*S_A + S_B``).
    """
    if signature_bits not in (1, 2, 3):
        raise ProtectionError(f"signature_bits must be 1, 2 or 3, got {signature_bits}")
    sums = np.asarray(sums, dtype=np.int64)
    if signature_bits == 1:
        divisors = (_SIGNATURE_DIVISORS[1],)
    else:
        divisors = _SIGNATURE_DIVISORS[:signature_bits]
    signature = np.zeros(sums.shape, dtype=np.uint8)
    for divisor in divisors:
        bit = np.mod(np.floor_divide(sums, divisor), 2).astype(np.uint8)
        signature = (signature << np.uint8(1)) | bit
    return signature


def compute_group_sums(
    qweight_flat: np.ndarray,
    layout: GroupLayout,
    key: Optional[SecretKey] = None,
    groups: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-group masked addition checksums ``M`` for one layer.

    ``qweight_flat`` is the layer's int8 weight tensor flattened in memory
    order; ``layout`` supplies the (possibly interleaved) grouping and
    ``key`` the masking signs (``None`` disables masking).  ``groups``
    restricts the computation to the listed group indices (in the given
    order); ``None`` computes every group.
    """
    qweight_flat = np.asarray(qweight_flat)
    if qweight_flat.dtype != np.int8:
        raise ProtectionError(f"Expected int8 weights, got dtype {qweight_flat.dtype}")
    values = qweight_flat.astype(np.int64)
    if groups is None:
        gathered = layout.gather(values)
    else:
        gathered = layout.gather_rows(values, groups)
    if key is not None:
        gathered = gathered * key.signs(layout.group_size)[None, :]
    return gathered.sum(axis=1)


def compute_signatures(
    qweight_flat: np.ndarray,
    layout: GroupLayout,
    key: Optional[SecretKey] = None,
    signature_bits: int = 2,
    groups: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Convenience wrapper: checksums then binarization."""
    sums = compute_group_sums(qweight_flat, layout, key, groups=groups)
    return signature_from_sums(sums, signature_bits)
