"""Addition checksum and signature binarization (Section IV.A).

For a group of ``G`` (masked) int8 weights the checksum is their integer
sum ``M``.  The 2-bit signature is

``S_A = floor(M / 256) mod 2`` and ``S_B = floor(M / 128) mod 2``

which in two's complement are simply bits 8 and 7 of ``M`` — i.e. the
binarization is a bit truncation, as the paper notes.  ``S_B`` acts as a
parity over the MSBs of the group (any single MSB flip moves ``M`` by
±128 and toggles it); ``S_A`` additionally catches same-direction double
flips.  A 3-bit signature appends ``S_C = floor(M / 64) mod 2`` to also
cover MSB-1 flips (Section VIII).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.interleave import GroupLayout
from repro.core.masking import SecretKey
from repro.errors import ProtectionError

#: Divisors whose quotient parity forms the signature bits, most significant first.
_SIGNATURE_DIVISORS = (256, 128, 64)


def signature_from_sums(sums: np.ndarray, signature_bits: int = 2) -> np.ndarray:
    """Binarize checksums into packed signatures.

    Parameters
    ----------
    sums:
        Integer array of per-group checksums ``M``.
    signature_bits:
        Which bits make up the signature: 1 → ``(S_B,)`` (parity only),
        2 → ``(S_A, S_B)`` (the paper's default), 3 → ``(S_A, S_B, S_C)``.

    Returns
    -------
    ``uint8`` array of the same shape as ``sums`` with the signature bits
    packed MSB-first (e.g. for 2 bits the value is ``2*S_A + S_B``).

    Notes
    -----
    ``floor(M / 2**k) mod 2`` is bit ``k`` of the two's-complement sum
    (floor division by a power of two is an arithmetic right shift, for
    negative ``M`` too), so the packed signature is a single shift-and-mask
    over the whole array: bits ``[8, 7]`` for the 2-bit default, bit ``7``
    alone for 1 bit, bits ``[8, 7, 6]`` for 3 bits.  Any signed integer
    dtype is accepted and shifted natively — the scan kernel feeds int32
    checksums through without a promotion to int64.
    """
    if signature_bits not in (1, 2, 3):
        raise ProtectionError(f"signature_bits must be 1, 2 or 3, got {signature_bits}")
    sums = np.asarray(sums)
    if sums.dtype.kind != "i":
        sums = sums.astype(np.int64)
    shift, mask = signature_shift_mask(signature_bits)
    return ((sums >> shift) & mask).astype(np.uint8)


def signature_shift_mask(signature_bits: int) -> tuple:
    """The ``(shift, mask)`` pair that extracts a packed signature from ``M``.

    Derived from :data:`_SIGNATURE_DIVISORS`: the least-significant
    signature bit is the parity of ``M`` divided by the smallest selected
    divisor, so the shift is that divisor's bit position and the mask keeps
    ``signature_bits`` bits.  Exposed so the scan kernel can binarize *in
    place* on its sums scratch (``sums >>= shift; sums &= mask``) without
    the intermediate arrays :func:`signature_from_sums` allocates.
    """
    if signature_bits not in (1, 2, 3):
        raise ProtectionError(f"signature_bits must be 1, 2 or 3, got {signature_bits}")
    lowest = _SIGNATURE_DIVISORS[1 if signature_bits == 1 else signature_bits - 1]
    return lowest.bit_length() - 1, (1 << signature_bits) - 1


def compute_group_sums(
    qweight_flat: np.ndarray,
    layout: GroupLayout,
    key: Optional[SecretKey] = None,
    groups: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-group masked addition checksums ``M`` for one layer.

    ``qweight_flat`` is the layer's int8 weight tensor flattened in memory
    order; ``layout`` supplies the (possibly interleaved) grouping and
    ``key`` the masking signs (``None`` disables masking).  ``groups``
    restricts the computation to the listed group indices (in the given
    order); ``None`` computes every group.
    """
    qweight_flat = np.asarray(qweight_flat)
    if qweight_flat.dtype != np.int8:
        raise ProtectionError(f"Expected int8 weights, got dtype {qweight_flat.dtype}")
    # Narrow accumulation: gather the int8 weights without promoting them and
    # let einsum accumulate the ±1-masked sum directly in the accumulator
    # dtype — no int64 weight copy and no materialized product matrix.  int32
    # always suffices at paper scales (|M| <= group_size * 128); the int64
    # fallback keeps pathological group sizes exact.
    accum = accumulator_dtype(layout.group_size)
    if groups is None:
        gathered = layout.gather(qweight_flat, dtype=np.int8)
    else:
        gathered = layout.gather_rows(qweight_flat, groups, dtype=np.int8)
    if key is not None:
        signs = key.signs(layout.group_size, dtype=np.int8)
        sums = np.einsum("ij,j->i", gathered, signs, dtype=accum)
    else:
        sums = gathered.sum(axis=1, dtype=accum)
    return sums.astype(np.int64)


def accumulator_dtype(group_size: int) -> np.dtype:
    """Narrowest dtype that holds any masked group sum exactly.

    A group of ``group_size`` int8 weights, each contributing at most
    ``|±128|`` after masking, bounds the checksum by ``group_size * 128`` —
    int32 covers every realistic configuration; int64 is the guard rail.
    """
    if group_size * 128 <= np.iinfo(np.int32).max:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def compute_signatures(
    qweight_flat: np.ndarray,
    layout: GroupLayout,
    key: Optional[SecretKey] = None,
    signature_bits: int = 2,
    groups: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Convenience wrapper: checksums then binarization."""
    sums = compute_group_sums(qweight_flat, layout, key, groups=groups)
    return signature_from_sums(sums, signature_bits)
