"""Fleet verification engine: cross-model batched scanning with an explicit
detect → recover → reprotect lifecycle.

PR 1–2 gave every registered model its own amortized
:class:`~repro.core.scheduler.ScanScheduler` and let the
:class:`~repro.core.service.ProtectionService` walk the registry *one model
at a time*, with recovery and re-signing left to caller discipline
(``step_and_recover`` + a manual ``reprotect``).  The
:class:`VerificationEngine` replaces that sequential tick with a shared
work queue of scan slices drawn from all registered models:

* **Batched execution** — each tick, every model plans its affordable slice
  and the engine coalesces every slice sharing a *kernel bucket* (same
  :meth:`~repro.core.signature.FusedSignatures.kernel_key`, i.e. same
  ``group_size`` and ``signature_bits``) into one stacked verification pass
  via :func:`~repro.core.signature.batched_mismatched_rows`.  Structurally
  identical models at the same rotation position share one broadcast
  index/sign matrix; models of *different* architectures ride the same
  stacked pass through bucketed padded stacking (row counts padded to the
  bucket max), so a heterogeneous fleet no longer falls back to sequential
  per-model scans.  The per-pass NumPy dispatch cost is paid once instead
  of once per model (`results/fleet_throughput.json` measures the
  verified-groups-per-second win over the sequential per-model loop).
  Registration *adopts* each model into its view's zero-copy weight plane
  (:meth:`~repro.core.signature.FusedSignatures.adopt`), and all stacked
  workspaces come from engine-owned per-bucket
  :class:`~repro.core.signature.ScanScratch` buffers reused across ticks —
  the steady-state tick moves no weight bytes beyond the gather itself.
* **Worker pool** — independent kernel buckets (fleets mixing group sizes
  or signature widths produce several) can run on a small thread pool
  (``workers > 1``); the stacked NumPy kernels release the GIL, and all
  scheduler bookkeeping (and each bucket's scratch) stays confined to one
  batch, so no engine state is shared across threads.
* **Process pool** — thread-pooled scanning is still GIL-bound between the
  kernels, so ``processes > 1`` instead publishes every model's plane (plus
  gather-index, sign and golden matrices) into
  ``multiprocessing.shared_memory`` segments
  (:meth:`~repro.core.signature.FusedSignatures.share`) and runs the
  bucketed stacked passes in worker processes
  (:class:`~repro.core.procpool.ProcessScanPool`).  Workers attach
  read-only and ship back only mismatched-row indices; the coordinator
  keeps lifecycle, recovery, re-sign, telemetry and every plane mutation.
  A re-sign republishes the model's segments under a bumped generation
  counter and unlinks the old ones, so stale workers re-attach by (new)
  name on their next task.  ``workers`` and ``processes`` are mutually
  exclusive.
* **Lifecycle state machine** — each model carries a
  :class:`ProtectionState`::

      PROTECTED ──flip detected──▶ FLAGGED ──▶ RECOVERING ──▶ REPROTECTING
          ▲                                                        │
          └────────────── re-signed over recovered weights ────────┘

  The engine drives the whole loop itself: a flagged slice triggers
  recovery (the paper's group-zeroing, or RELOAD from a golden snapshot)
  and — because zeroed groups no longer match their golden signatures —
  an automatic re-sign (``auto_reprotect``) so the fleet returns to a
  verifiably clean PROTECTED state without any manual
  ``step_and_recover`` / ``reprotect`` calls.  The re-sign is preceded by a
  full-model sweep: the detection slice covered one shard, and re-signing
  with other shards unscanned would accept their corruption as golden.
* **Event bus** — ``detection`` / ``recovery`` / ``reprotect`` /
  ``budget_exhausted`` events (:class:`FleetEventType`) are published to an
  :class:`EventBus` with a bounded history, so operators observe the
  lifecycle instead of polling per-model state.

:class:`~repro.core.service.ProtectionService` is a thin façade over this
engine, preserving the PR 1–2 API (detect-only ``step``, caller-driven
``step_and_recover``/``reprotect``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import RadarConfig
from repro.core.cost import AnalyticScanCostModel, ScanCostModel
from repro.core.detector import DetectionReport
from repro.core.procpool import (
    FaultPlan,
    ProcessScanPool,
    ScanTask,
    ScanTaskItem,
)
from repro.core.protector import ModelProtector
from repro.core.recovery import RecoveryPolicy, RecoveryReport
from repro.core.scheduler import ScanPassResult, ScanPolicy, ScanScheduler
from repro.core.signature import (
    ScanScratch,
    SharedPlaneSpec,
    StackedVerifier,
    batched_mismatched_rows,
    shared_memory_available,
    split_by_padding_waste,
)
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers
from repro.telemetry.trace import NULL_SPAN, NULL_TRACER


class ProtectionState(str, Enum):
    """Where a managed model sits in the detect → recover → reprotect loop."""

    PROTECTED = "protected"
    FLAGGED = "flagged"
    RECOVERING = "recovering"
    REPROTECTING = "reprotecting"


class FleetEventType(str, Enum):
    """What the engine's event bus publishes."""

    DETECTION = "detection"
    RECOVERY = "recovery"
    REPROTECT = "reprotect"
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: The process pool failed repeatedly; scans fell back to the
    #: in-process path (emitted with the fleet-scope pseudo-model).
    DEGRADED = "degraded"
    #: A healthy degraded window elapsed; process scanning resumed.
    RESTORED = "restored"


#: Pseudo-model name fleet-scope events (DEGRADED/RESTORED) are emitted
#: under — they describe the engine, not any one managed model.  Reports
#: that enumerate models should filter it out.
FLEET_SCOPE = "fleet"


@dataclass(frozen=True)
class FleetEvent:
    """One lifecycle event of one managed model."""

    type: FleetEventType
    model: str
    tick: int
    detail: Dict[str, object] = field(default_factory=dict)


class EventBus:
    """Bounded-history publish/subscribe bus for :class:`FleetEvent`.

    Subscribers are called synchronously from the engine's control thread
    (never from worker threads), in subscription order; exceptions propagate
    to the ``tick`` caller.  ``subscribe`` returns an unsubscribe callable.
    """

    def __init__(self, history: int = 256) -> None:
        if history < 1:
            raise ProtectionError(f"history must be >= 1, got {history}")
        self._history: Deque[FleetEvent] = deque(maxlen=history)
        self._subscribers: List[Tuple[Optional[FleetEventType], Callable, object]] = []

    def subscribe(
        self,
        callback: Callable[[FleetEvent], None],
        event_type: Optional[FleetEventType] = None,
    ) -> Callable[[], None]:
        """Register ``callback`` for every event (or one ``event_type``)."""
        # The sentinel makes every entry unique, so unsubscribing one of two
        # identical (type, callback) subscriptions never removes the other.
        entry = (
            FleetEventType(event_type) if event_type is not None else None,
            callback,
            object(),
        )
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    def emit(self, event: FleetEvent) -> None:
        self._history.append(event)
        for event_type, callback, _ in list(self._subscribers):
            if event_type is None or event_type is event.type:
                callback(event)

    def events(self, event_type: Optional[FleetEventType] = None) -> List[FleetEvent]:
        """Snapshot of the retained history (optionally one type only)."""
        if event_type is None:
            return list(self._history)
        event_type = FleetEventType(event_type)
        return [event for event in self._history if event.type is event_type]

    def __len__(self) -> int:
        return len(self._history)


@dataclass
class ManagedModel:
    """One registered model and its protection state."""

    name: str
    model: Module
    protector: ModelProtector
    scheduler: ScanScheduler
    cost_model: Optional[ScanCostModel] = None
    keep_golden_weights: bool = False
    #: Constructor arguments the scheduler was built with, so the
    #: REPROTECTING step can rebuild an identical one against the re-signed
    #: store.
    scheduler_options: Dict = field(default_factory=dict)
    #: Lifecycle position (see :class:`ProtectionState`).
    state: ProtectionState = ProtectionState.PROTECTED
    #: ``{layer_name: quantized layer}`` cache so batched execution does not
    #: re-walk the module tree every tick (layer objects are stable; their
    #: ``qweight`` buffers are mutated in place by attacks and recovery).
    layer_map: Dict[str, Module] = field(default_factory=dict)
    #: Shared-memory publication of this model's kernel arrays (process
    #: mode only; ``None`` until first published).  The spec always points
    #: at the *current* generation's segments.
    plane_spec: Optional[SharedPlaneSpec] = None
    #: Monotonic publish counter — bumped on every (re)publish, so workers
    #: detect a re-signed plane and re-attach (see
    #: :class:`~repro.core.signature.SharedPlaneSpec`).
    plane_generation: int = 0
    #: ``(scheduler, price, floor)`` memo for :meth:`min_feasible_budget_s` —
    #: the floor only changes when the scheduler is rebuilt or a measured
    #: cost model recalibrates, but feasibility is re-checked on every
    #: budgeted tick.
    _min_feasible_memo: Optional[Tuple[ScanScheduler, Optional[float], float]] = None

    def refresh_layer_map(self) -> None:
        self.layer_map = dict(quantized_layers(self.model))
        # Adopt the model into the fused view's zero-copy weight plane: the
        # engine's scans then gather straight from the buffers attacks and
        # recovery mutate, with no per-tick weight copies.
        self.scheduler.fused.adopt(self.layer_map)

    def min_feasible_budget_s(self) -> float:
        """Cost of this model's largest shard — the least budget that can
        ever advance its rotation past that shard."""
        price = getattr(self.cost_model, "seconds_per_group", None)
        memo = self._min_feasible_memo
        if memo is not None and memo[0] is self.scheduler and memo[1] == price:
            return memo[2]
        cost_model = self.cost_model or AnalyticScanCostModel.from_radar_config(
            self.protector.config
        )
        floor = cost_model.pass_cost_s(self.scheduler.largest_shard_groups)
        self._min_feasible_memo = (self.scheduler, price, floor)
        return floor

    def urgency(self) -> float:
        """Budget-allocation rank: exposure backlog plus flagged history.

        The backlog term is the *mean* shard exposure (not the max): a model
        that scans one shard per tick still ages its other shards, so the max
        cannot distinguish it from a model that scans nothing.  The mean
        drops with every scanned shard, which is what lets an underfunded
        model overtake its peers on the next tick.
        """
        return (
            1.0
            + self.scheduler.mean_exposure_passes
            + self.scheduler.total_flagged_passes
        )


@dataclass(slots=True)
class EngineTickOutcome:
    """What one engine tick did to one managed model.

    ``slots=True``: one per model per tick; see :class:`_PlannedSlice`.
    """

    name: str
    scan: ScanPassResult
    state: ProtectionState
    #: States entered during this tick, in order (empty when nothing moved).
    transitions: List[ProtectionState] = field(default_factory=list)
    recovery: Optional[RecoveryReport] = None
    reprotected: bool = False
    #: Share of the fleet-wide budget this model was stepped with, if any.
    budget_s: Optional[float] = None
    #: Models co-verified in this model's batched pass (1 = ran alone).
    batch_size: int = 1
    #: Row count the batched pass was padded to (0 = empty slice).  The
    #: ratio ``scan.groups_checked / batch_width`` is the stacking fill —
    #: what telemetry tracks as bucketed-stacking efficiency.
    batch_width: int = 0
    #: Which execution lane ran this model's kernel pass: a thread name
    #: (``MainThread`` / pool thread) or ``process-N`` in process mode.
    #: ``None`` when the slice was empty and no kernel ran.
    worker: Optional[str] = None

    @property
    def attack_detected(self) -> bool:
        return self.scan.attack_detected

    @property
    def measured_s(self) -> Optional[float]:
        """Wall-clock share this model's verification actually spent."""
        return self.scan.measured_s


@dataclass(slots=True)
class _PlannedSlice:
    """Internal work item: one model's affordable slice for this tick.

    ``slots=True``: one of these is created and field-swept per model per
    engine tick, where ``__dict__`` allocation is measurable overhead.
    """

    managed: ManagedModel
    share: Optional[float]
    shard_indices: List[int]
    rows: np.ndarray
    flagged_rows: Optional[np.ndarray] = None
    measured_s: float = 0.0
    batch_size: int = 1
    batch_width: int = 0
    worker: Optional[str] = None


class VerificationEngine:
    """Event-driven verification over a registry of protected models.

    Typical use::

        engine = VerificationEngine(budget_s=2e-3)      # 2 ms per tick
        engine.register("lane-a", model_a, keep_golden_weights=True)
        engine.register("lane-b", model_b)
        engine.bus.subscribe(print, FleetEventType.DETECTION)
        ...
        outcomes = engine.tick()        # once per serving tick: scan a
                                        # batched cross-model slice, recover
                                        # and re-sign whatever was flagged

    ``workers > 1`` runs independent batch groups on a thread pool (useful
    for heterogeneous fleets whose models cannot share a stacked pass);
    bookkeeping and event delivery always stay on the calling thread.

    ``processes > 1`` instead publishes each model's kernel arrays into
    shared memory and scans disjoint kernel-key buckets in worker
    processes (:class:`~repro.core.procpool.ProcessScanPool`), sidestepping
    the GIL entirely.  Workers are read-only; every plane mutation
    (recovery, re-sign) stays on the coordinator, which republishes the
    affected model's segments under a bumped generation counter so stale
    workers re-attach.  ``workers`` and ``processes`` are mutually
    exclusive, and process mode requires ``multiprocessing.shared_memory``
    (check :func:`~repro.core.signature.shared_memory_available` and fall
    back to threads when it is missing).  Engines that published planes or
    started pools should be closed (or used as a context manager).
    """

    def __init__(
        self,
        default_config: Optional[RadarConfig] = None,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
        workers: int = 1,
        processes: int = 1,
        recovery_policy: RecoveryPolicy = RecoveryPolicy.ZERO,
        auto_reprotect: bool = True,
        event_history: int = 256,
        max_padding_waste: Optional[float] = 0.5,
        fault_plan: Optional[FaultPlan] = None,
        degrade_after: int = 2,
        restore_after_ticks: int = 8,
        pool_options: Optional[Dict] = None,
        segment_registry: Optional[object] = None,
    ) -> None:
        if num_shards < 1:
            raise ProtectionError(f"num_shards must be >= 1, got {num_shards}")
        if shards_per_pass < 1:
            raise ProtectionError(f"shards_per_pass must be >= 1, got {shards_per_pass}")
        if shards_per_pass > num_shards:
            raise ProtectionError(
                f"shards_per_pass must be within [1, num_shards]; "
                f"got shards_per_pass={shards_per_pass} with num_shards={num_shards}"
            )
        if budget_s is not None and not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        if workers < 1:
            raise ProtectionError(f"workers must be >= 1, got {workers}")
        if processes < 1:
            raise ProtectionError(f"processes must be >= 1, got {processes}")
        if workers > 1 and processes > 1:
            raise ProtectionError(
                "workers and processes are mutually exclusive: pick "
                "thread-pooled scanning (workers > 1) or process-pooled "
                "scanning (processes > 1), not both"
            )
        if processes > 1 and not shared_memory_available():
            raise ProtectionError(
                "processes > 1 requires multiprocessing.shared_memory, which "
                "is unavailable on this platform; use workers (threads) instead"
            )
        if max_padding_waste is not None and not 0 <= max_padding_waste < 1:
            raise ProtectionError(
                f"max_padding_waste must be in [0, 1) or None, got {max_padding_waste}"
            )
        if degrade_after < 1:
            raise ProtectionError(f"degrade_after must be >= 1, got {degrade_after}")
        if restore_after_ticks < 1:
            raise ProtectionError(
                f"restore_after_ticks must be >= 1, got {restore_after_ticks}"
            )
        self.default_config = default_config or RadarConfig()
        self.num_shards = num_shards
        self.policy = ScanPolicy(policy)
        self.shards_per_pass = shards_per_pass
        self.budget_s = budget_s
        self.workers = workers
        self.processes = processes
        self.recovery_policy = RecoveryPolicy(recovery_policy)
        self.auto_reprotect = auto_reprotect
        #: Width-disparity guard for bucketed padded stacking: kernel
        #: buckets whose padding-waste ratio would exceed this are sub-split
        #: into separate stacked passes (``None`` disables the guard); see
        #: :func:`~repro.core.signature.split_by_padding_waste`.
        self.max_padding_waste = max_padding_waste
        self.bus = EventBus(history=event_history)
        #: Optional per-tick observer (duck-typed: needs ``observe_tick``).
        #: :meth:`repro.telemetry.monitor.FleetTelemetry.attach` sets this —
        #: lifecycle *events* travel over the bus, but budget utilisation
        #: and stacking efficiency live in tick outcomes, which never do.
        self.telemetry = None
        #: Span tracer for the tick pipeline (plan → assemble → kernel →
        #: verdict → lifecycle).  The null tracer makes every span call a
        #: constant-time no-op; ``serve-demo --trace-dir`` swaps in a
        #: :class:`~repro.telemetry.trace.SpanTracer` with a flight
        #: recorder.  Worker-lane spans parent back to the tick span via
        #: the :class:`~repro.core.procpool.ScanTask` trace envelope.
        self.tracer = NULL_TRACER
        #: Wall-clock of the last completed tick (``perf_counter`` diff),
        #: measured just before telemetry observes the tick so the
        #: ``tick_duration_s`` histogram and the ``engine.tick`` span
        #: report the *same* sample.
        self.last_tick_duration_s: Optional[float] = None
        #: Deterministic chaos schedule shipped to every scan worker (see
        #: :class:`~repro.core.procpool.FaultPlan`); ``None`` in production.
        self.fault_plan = fault_plan
        #: Consecutive pool failures before the engine flips to DEGRADED
        #: in-process scanning, and healthy degraded ticks before it
        #: re-probes the pool (emitting RESTORED).
        self.degrade_after = int(degrade_after)
        self.restore_after_ticks = int(restore_after_ticks)
        #: Extra :class:`~repro.core.procpool.ProcessScanPool` constructor
        #: keywords (timeouts, retry bounds) — chaos tests tighten these.
        self.pool_options = dict(pool_options) if pool_options else {}
        #: Optional :class:`~repro.telemetry.store.SegmentRegistry`-shaped
        #: ledger; published segment names are recorded through it so a
        #: restart can reap what a crashed coordinator left behind.
        self.segment_registry = segment_registry
        self._models: Dict[str, ManagedModel] = {}
        self._tick_index = 0
        self._tick_span_ctx = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._proc_pool: Optional[ProcessScanPool] = None
        # Degradation state machine: consecutive pool failures trip it,
        # a healthy window of inline ticks restores it.  Totals survive
        # pool teardown (stats from closed pools are absorbed here).
        self._degraded = False
        self._pool_failures_consecutive = 0
        self._pool_failures_total = 0
        self._degraded_ticks_total = 0
        self._ticks_degraded_current = 0
        self._absorbed_pool_stats: Dict[str, int] = {}
        # Per-bucket kernel workspaces, reused across ticks.  A bucket is
        # one batch per tick and batches never share a ScanScratch, so the
        # worker pool can run buckets concurrently without contention.
        self._scratch: Dict[Tuple, ScanScratch] = {}
        # Precompiled stacked passes per (kernel key, sub-bucket): rebuilt
        # whenever the bucket's membership changes (checked by fused-view
        # identity each tick — a re-sign replaces the view object).
        self._verifiers: Dict[Tuple, StackedVerifier] = {}
        # Feasibility-check memo (see _require_feasible): bumped by
        # register/unregister and by re-signs, which replace a scheduler.
        self._models_version = 0
        self._feasible_for: Optional[Tuple[float, int]] = None

    # -- registry ---------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Module,
        config: Optional[RadarConfig] = None,
        num_shards: Optional[int] = None,
        policy: Optional[ScanPolicy] = None,
        shards_per_pass: Optional[int] = None,
        keep_golden_weights: bool = False,
        cost_model: Optional[ScanCostModel] = None,
    ) -> ManagedModel:
        """Protect ``model`` and enrol it in the scan rotation.

        ``cost_model`` prices this model's scan slices for budgeted ticks;
        it defaults to the analytic model derived from the model's
        :class:`~repro.core.config.RadarConfig`.
        """
        if not name:
            raise ProtectionError("Managed model name must be non-empty")
        if name in self._models:
            raise ProtectionError(f"Model {name!r} is already registered")
        radar_config = config or self.default_config
        protector = ModelProtector(radar_config)
        protector.protect(model, keep_golden_weights=keep_golden_weights)
        resolved_cost_model = cost_model or AnalyticScanCostModel.from_radar_config(
            radar_config
        )
        scheduler_options = {
            "num_shards": num_shards if num_shards is not None else self.num_shards,
            "policy": policy if policy is not None else self.policy,
            "shards_per_pass": (
                shards_per_pass if shards_per_pass is not None else self.shards_per_pass
            ),
        }
        scheduler = ScanScheduler(
            protector.store, cost_model=resolved_cost_model, **scheduler_options
        )
        managed = ManagedModel(
            name=name,
            model=model,
            protector=protector,
            scheduler=scheduler,
            cost_model=resolved_cost_model,
            keep_golden_weights=keep_golden_weights,
            scheduler_options=scheduler_options,
        )
        managed.refresh_layer_map()
        if self.budget_s is not None:
            self._require_feasible(self.budget_s, {name: managed})
        self._models[name] = managed
        self._models_version += 1
        return managed

    def unregister(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        managed = self._models.pop(name)
        self._models_version += 1
        if managed.scheduler.fused.shared_spec is not None:
            # Keep the model usable after it leaves the engine: copy the
            # kernel arrays back to process-private memory and rebind any
            # adopted layers before the segments are unlinked.
            managed.scheduler.fused.unshare()
            managed.plane_spec = None
        return managed

    def get(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        return self._models[name]

    def names(self) -> List[str]:
        return list(self._models)

    def state_of(self, name: str) -> ProtectionState:
        return self.get(name).state

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    # -- lifecycle ---------------------------------------------------------------
    def reprotect(self, name: str) -> ManagedModel:
        """Re-sign a model after a legitimate weight update (or a recovery).

        Rebuilds the golden signatures from the model's *current* weights and
        replaces its scheduler with a fresh rotation over the re-signed
        store.  The planner object is carried over (with its rotation cursor
        reset), so learned per-shard flip rates survive the re-sign — the
        shard that was just attacked stays a priority.  Emits a
        ``reprotect`` event and returns the model to PROTECTED.
        """
        managed = self.get(name)
        self._resign(managed)
        managed.state = ProtectionState.PROTECTED
        self._emit(FleetEventType.REPROTECT, name, {"trigger": "manual"})
        return managed

    def _resign(self, managed: ManagedModel) -> None:
        # If the plane was published to shared memory, the re-sign must
        # *republish*: hold onto the old fused view so its segments can be
        # released only after the successor has copied the plane out and
        # taken over the adopted layers.
        previous = managed.scheduler.fused
        shared_before = previous.shared_spec is not None
        managed.protector.protect(
            managed.model, keep_golden_weights=managed.keep_golden_weights
        )
        planner = managed.scheduler.planner
        planner.reset()
        self._models_version += 1
        managed.scheduler = ScanScheduler(
            managed.protector.store,
            cost_model=managed.cost_model,
            planner=planner,
            **managed.scheduler_options,
        )
        managed.refresh_layer_map()
        if shared_before:
            # Generation bump + fresh segment names: in-flight workers still
            # hold valid (unlinked) mappings of the old generation, and the
            # next task they receive carries the new spec, so they re-attach
            # by the new names.  Publish first (the new fused alias-adopted
            # the old shared plane, so the copy source must stay alive),
            # then drop the old view's segments.
            managed.plane_generation += 1
            managed.plane_spec = managed.scheduler.fused.share(
                managed.name,
                managed.plane_generation,
                registrar=self.segment_registry,
            )
            previous.release_shared()

    # -- budget allocation --------------------------------------------------------
    def allocate_budget(self, budget_s: float) -> Dict[str, float]:
        """Split one fleet-wide tick budget across the registered models.

        Models claim budget in :meth:`ManagedModel.urgency` order (exposure
        backlog plus flagged history; registration order breaks ties): each
        claims exactly the priced cost of the shard slice it can afford from
        what is left, and the remainder flows to the next model.  A model
        whose leftover cannot cover one of its shards gets a zero share this
        tick — its backlog then grows, so it claims first on a later tick
        instead of silently overrunning the budget.  Shares therefore sum to
        at most ``budget_s``.
        """
        self._require_models()
        return {
            name: share for name, (share, _) in self._plan_budgeted(budget_s).items()
        }

    def _plan_budgeted(
        self, budget_s: float
    ) -> Dict[str, Tuple[float, List[int]]]:
        """Urgency-ordered allocation: each model's (share, planned slice)."""
        if not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        self._require_feasible(budget_s, self._models)
        by_urgency = sorted(
            self._models, key=lambda name: -self._models[name].urgency()
        )
        planned: Dict[str, Tuple[float, List[int]]] = {}
        remaining = budget_s
        for name in by_urgency:
            scheduler = self._models[name].scheduler
            shard_indices = scheduler.plan(budget_s=remaining)
            share = scheduler.slice_cost_s(shard_indices)
            planned[name] = (share, shard_indices)
            remaining -= share
        # Preserve registration order for callers iterating the result.
        return {name: planned[name] for name in self._models}

    def _plan_tick(
        self, budget_s: Optional[float]
    ) -> Dict[str, Tuple[Optional[float], List[int]]]:
        """Every model's budget share and slice for one tick, planned once."""
        budget = budget_s if budget_s is not None else self.budget_s
        if budget is None:
            return {
                name: (None, managed.scheduler.plan())
                for name, managed in self._models.items()
            }
        return dict(self._plan_budgeted(budget))

    # -- the tick -----------------------------------------------------------------
    def tick(
        self,
        budget_s: Optional[float] = None,
        recovery_policy: Optional[RecoveryPolicy] = None,
    ) -> Dict[str, EngineTickOutcome]:
        """One engine pass: batched cross-model scan + automatic lifecycle.

        Every registered model contributes its affordable slice to the work
        queue; structurally identical slices are verified together in one
        stacked pass.  Flagged models are then recovered under
        ``recovery_policy`` (default: the engine's policy;
        ``RecoveryPolicy.NONE`` detects only) and — when ``auto_reprotect``
        is on — re-signed, so the whole
        FLAGGED → RECOVERING → REPROTECTING → PROTECTED loop happens inside
        this call.
        """
        self._require_models()
        policy = (
            RecoveryPolicy(recovery_policy)
            if recovery_policy is not None
            else self.recovery_policy
        )
        self._tick_index += 1
        tracer = self.tracer
        started = time.perf_counter()
        tick_span = tracer.span(
            "engine.tick",
            attrs={"tick": self._tick_index, "models": len(self._models)},
        )
        # Kernel batches and lifecycle transitions run in helpers (some on
        # pool threads) that have no natural parameter path for the span
        # context; one tick runs at a time, so an attribute is safe.
        self._tick_span_ctx = tick_span.context
        plan_span = tracer.span("tick.plan", parent=tick_span.context)
        plans = self._plan_tick(budget_s)
        slices: List[_PlannedSlice] = []
        for name, managed in self._models.items():
            share, shard_indices = plans[name]
            rows = managed.scheduler.slice_rows(shard_indices)
            if share is not None and not shard_indices:
                self._emit(
                    FleetEventType.BUDGET_EXHAUSTED,
                    name,
                    {
                        "budget_share_s": share,
                        "min_feasible_budget_s": managed.min_feasible_budget_s(),
                    },
                )
            slices.append(_PlannedSlice(managed, share, shard_indices, rows))
        plan_span.finish()
        self._execute(slices, parent=tick_span.context)
        verdict_span = tracer.span("tick.verdict", parent=tick_span.context)
        outcomes: Dict[str, EngineTickOutcome] = {}
        for planned in slices:
            scan = planned.managed.scheduler.apply_scan(
                planned.shard_indices,
                planned.flagged_rows,
                measured_s=planned.measured_s,
                budget_s=planned.share,
            )
            outcomes[planned.managed.name] = self._lifecycle(
                planned, scan, policy
            )
        verdict_span.finish()
        # Stamp the duration *before* telemetry observes it, then close the
        # tick span with the very same value — the span export and the
        # tick_duration_s histogram must agree sample for sample.
        elapsed = time.perf_counter() - started
        self.last_tick_duration_s = elapsed
        if self.telemetry is not None:
            self.telemetry.observe_tick(self._tick_index, outcomes)
        self._tick_span_ctx = None
        tick_span.finish(duration_s=elapsed)
        return outcomes

    @property
    def tick_index(self) -> int:
        """Ticks run so far (the tick stamp :class:`FleetEvent`\\ s carry)."""
        return self._tick_index

    def _execute(self, slices: List[_PlannedSlice], parent=None) -> None:
        """Verify every planned slice, coalescing kernel-compatible ones.

        Slices are bucketed by :meth:`FusedSignatures.kernel_key` — the same
        ``(group_size, signature_bits)`` means the same gather-row width and
        binarization, which is all the stacked pass needs.  Structurally
        identical models at the same rotation position share one broadcast
        index matrix inside the pass; everything else rides along via padded
        stacking, so even a fully heterogeneous fleet coalesces into one
        batch per bucket instead of one pass per model.  Inside a bucket the
        stacked pass is cache-blocked over slot-major tiles and each model's
        contiguous slice gathers through its plane's rotated-arange
        structure when one was detected at fuse time (see
        :func:`~repro.core.signature._stacked_sums`) — per-model metadata
        rides the :class:`FusedSignatures` views here and the published
        :class:`SharedPlaneSpec` on the process path.
        """
        assemble_span = self.tracer.span("tick.assemble", parent=parent)
        batches: Dict[Tuple, List[_PlannedSlice]] = {}
        for planned in slices:
            if planned.rows.size == 0:
                planned.flagged_rows = planned.rows
                planned.measured_s = 0.0
                continue
            key = planned.managed.scheduler.fused.kernel_key()
            batches.setdefault(key, []).append(planned)
        groups: List[Tuple[List[_PlannedSlice], ScanScratch]] = []
        for key, batch in batches.items():
            # Width-disparity guard: padding every slice to the bucket max is
            # wasteful when one model's row count dwarfs the rest, so such a
            # bucket is sub-split into separately stacked passes.  Each
            # sub-bucket keeps its own scratch (sub-buckets of one key may run
            # concurrently on the worker pool).
            if self.max_padding_waste is not None and len(batch) > 1:
                parts = split_by_padding_waste(
                    [planned.rows.size for planned in batch],
                    self.max_padding_waste,
                )
            else:
                parts = [list(range(len(batch)))]
            for sub_index, part in enumerate(parts):
                scratch = self._scratch.setdefault((key, sub_index), ScanScratch())
                sub_batch = [batch[index] for index in part]
                verifier = self._bucket_verifier((key, sub_index), sub_batch)
                groups.append((sub_batch, scratch, verifier))
        assemble_span.set_attr("buckets", len(groups))
        assemble_span.finish()
        if self.processes > 1 and groups:
            self._execute_processes(groups, parent=parent)
        elif self.workers > 1 and len(groups) > 1:
            started = time.perf_counter()
            pool = self._ensure_pool()
            list(pool.map(lambda item: self._run_batch(*item), groups))
            elapsed = time.perf_counter() - started
            # Concurrent batches overlap, so their individual spans
            # double-count shared wall-clock; apportion the *aggregate*
            # elapsed time instead.  A model's share of a padded stacked
            # pass is its batch's full width (not its own row count), so
            # weight by batch width — the same equal-share-within-a-batch
            # rule _run_batch applies on the single-threaded path.
            total_work = sum(
                max(planned.rows.size for planned in batch) * len(batch)
                for batch, _, _ in groups
            )
            for batch, _, _ in groups:
                width = max(planned.rows.size for planned in batch)
                for planned in batch:
                    planned.measured_s = elapsed * width / max(total_work, 1)
        else:
            for batch, scratch, verifier in groups:
                self._run_batch(batch, scratch, verifier)

    def _execute_processes(
        self,
        groups: List[Tuple[List[_PlannedSlice], ScanScratch, StackedVerifier]],
        parent=None,
    ) -> None:
        """Run the planned groups on the process pool, degrading on failure.

        Buckets are the natural work unit, but a fleet of identical models
        coalesces into *one* bucket — so oversized batches are halved until
        there is at least one task per worker (sub-batches of a bucket stay
        kernel-compatible by construction).  Workers see only plain data:
        shared-segment specs plus contiguous row ranges.

        The pool absorbs individual faults internally (respawn, retry,
        quarantine); a :class:`ProtectionError` out of :meth:`run` means
        the pool as a whole failed this tick.  The tick still completes —
        the full groups run through the in-process path — and after
        ``degrade_after`` consecutive failures the engine enters DEGRADED
        mode: the pool is torn down and every process-mode tick runs
        inline until ``restore_after_ticks`` healthy ticks have passed,
        at which point a RESTORED event fires and the next tick re-probes
        a fresh pool.
        """
        if self._degraded:
            self._ticks_degraded_current += 1
            if self._ticks_degraded_current < self.restore_after_ticks:
                self._degraded_ticks_total += 1
                self._run_groups_inline(groups)
                return
            # Healthy window served out: restore and re-probe the pool
            # with this very tick.
            self._degraded = False
            self._emit(
                FleetEventType.RESTORED,
                FLEET_SCOPE,
                {"degraded_ticks": self._ticks_degraded_current},
            )
            self._ticks_degraded_current = 0
        batches = self._split_for_processes([batch for batch, _, _ in groups])
        tasks: List[ScanTask] = []
        for task_id, batch in enumerate(batches):
            items: List[ScanTaskItem] = []
            descriptors = []
            for planned in batch:
                spec = self._ensure_shared(planned.managed)
                descriptor = planned.managed.scheduler.slice_descriptor(
                    planned.shard_indices
                )
                descriptors.append(descriptor)
                items.append(
                    ScanTaskItem(planned.managed.name, spec, descriptor.row_ranges)
                )
            first = batch[0].managed.scheduler.fused.structure_key()
            homogeneous = all(
                planned.managed.scheduler.fused.structure_key() == first
                for planned in batch[1:]
            ) and all(
                descriptor.row_ranges == descriptors[0].row_ranges
                for descriptor in descriptors[1:]
            )
            tasks.append(ScanTask(task_id, tuple(items), homogeneous))
        started = time.perf_counter()
        # Untraced runs keep the plain run(tasks) signature so pool stand-ins
        # (tests, alternative pools) owe nothing to the tracing surface.
        trace_kwargs = (
            {"tracer": self.tracer, "parent": parent}
            if self.tracer.enabled
            else {}
        )
        try:
            results = self._ensure_proc_pool().run(tasks, **trace_kwargs)
        except ProtectionError as error:
            self._note_pool_failure(error)
            self._run_groups_inline(groups)
            return
        self._pool_failures_consecutive = 0
        elapsed = time.perf_counter() - started
        # Same aggregate-apportioning rule as the thread path: concurrent
        # tasks overlap, so bill each model its batch-width share of the
        # total wall-clock rather than a double-counted per-task span.
        total_work = sum(
            max(planned.rows.size for planned in batch) * len(batch)
            for batch in batches
        )
        for task_id, batch in enumerate(batches):
            result = results[task_id]
            width = max(planned.rows.size for planned in batch)
            worker = (
                f"process-{result.worker}"
                if result.worker >= 0
                else "coordinator-quarantine"
            )
            for planned, flagged_rows in zip(batch, result.flagged):
                planned.flagged_rows = flagged_rows
                planned.measured_s = elapsed * width / max(total_work, 1)
                planned.batch_size = len(batch)
                planned.batch_width = width
                planned.worker = worker

    def _run_groups_inline(
        self,
        groups: List[Tuple[List[_PlannedSlice], ScanScratch, StackedVerifier]],
    ) -> None:
        """The in-process fallback: identical verdicts, no pool."""
        for batch, scratch, verifier in groups:
            self._run_batch(batch, scratch, verifier)

    def _note_pool_failure(self, error: ProtectionError) -> None:
        self._pool_failures_total += 1
        self._pool_failures_consecutive += 1
        # A failed pool may hold wedged workers; tear it down either way
        # (stats are absorbed) — a fresh pool is lazily built on the next
        # process-mode tick unless we just degraded.
        self._discard_proc_pool()
        if (
            not self._degraded
            and self._pool_failures_consecutive >= self.degrade_after
        ):
            self._degraded = True
            self._ticks_degraded_current = 0
            self._emit(
                FleetEventType.DEGRADED,
                FLEET_SCOPE,
                {
                    "consecutive_failures": self._pool_failures_consecutive,
                    "error": str(error),
                },
            )
            # Black-box dump: capture the flight that tripped the breaker
            # while the evidence is still in the recorder (no-op unless a
            # tracer with an auto-dump directory is attached).
            self.tracer.auto_dump("degraded")
        if self._degraded:
            self._degraded_ticks_total += 1

    def _split_for_processes(
        self, batches: List[List[_PlannedSlice]]
    ) -> List[List[_PlannedSlice]]:
        """Halve the largest batch until task count >= processes (or stuck)."""
        batches = [list(batch) for batch in batches]
        while len(batches) < self.processes:
            index = max(range(len(batches)), key=lambda i: len(batches[i]))
            largest = batches[index]
            if len(largest) < 2:
                break
            middle = len(largest) // 2
            batches[index : index + 1] = [largest[:middle], largest[middle:]]
        return batches

    def _ensure_shared(self, managed: ManagedModel) -> SharedPlaneSpec:
        """Lazily publish (and cache) a model's shared-memory plane spec."""
        fused = managed.scheduler.fused
        spec = fused.shared_spec
        if spec is None:
            managed.plane_generation += 1
            spec = fused.share(
                managed.name,
                managed.plane_generation,
                registrar=self.segment_registry,
            )
        managed.plane_spec = spec
        return spec

    def _bucket_verifier(
        self, cache_key: Tuple, batch: List[_PlannedSlice]
    ) -> StackedVerifier:
        """The precompiled stacked pass for one sub-bucket, rebuilt on change.

        Bucket membership is stable tick to tick (same models, same
        registration order), so the identity sweep below almost always hits;
        a re-sign replaces a model's fused view object and a
        ``refresh_layer_map`` rebinds its layer map, either of which misses
        and recompiles.
        """
        verifier = self._verifiers.get(cache_key)
        if verifier is not None and len(verifier.views) == len(batch):
            for planned, view, layer_map in zip(
                batch, verifier.views, verifier.layer_maps
            ):
                if (
                    planned.managed.scheduler.fused is not view
                    or planned.managed.layer_map is not layer_map
                ):
                    break
            else:
                return verifier
        verifier = StackedVerifier(
            [planned.managed.scheduler.fused for planned in batch],
            [planned.managed.layer_map for planned in batch],
        )
        self._verifiers[cache_key] = verifier
        return verifier

    def _run_batch(
        self,
        batch: List[_PlannedSlice],
        scratch: ScanScratch,
        verifier: Optional[StackedVerifier] = None,
    ) -> None:
        span = (
            self.tracer.span("scan.kernel", parent=self._tick_span_ctx)
            if self.tracer.enabled
            else NULL_SPAN
        )
        started = time.perf_counter()
        # Singletons go through the same kernel: a one-model "stack" costs the
        # same as the direct path but reuses the cached layer maps instead of
        # re-walking the module tree every tick.
        if verifier is not None:
            flagged = verifier.verify(
                [planned.rows for planned in batch], scratch
            )
        else:
            flagged = batched_mismatched_rows(
                [planned.managed.scheduler.fused for planned in batch],
                [planned.managed.layer_map for planned in batch],
                [planned.rows for planned in batch],
                scratch=scratch,
            )
        elapsed = time.perf_counter() - started
        share = elapsed / len(batch)
        width = max(planned.rows.size for planned in batch)
        worker = threading.current_thread().name
        span.set_attr("batch", len(batch))
        span.set_attr("width", int(width))
        span.set_attr("worker", worker)
        span.finish(duration_s=elapsed)
        for planned, flagged_rows in zip(batch, flagged):
            planned.flagged_rows = flagged_rows
            planned.worker = worker
            # Every model's column in the padded stack is gathered and
            # reduced at the full bucket width, so each model really costs
            # an equal share of the pass — billing by own row count would
            # under-charge short slices and miscalibrate measured cost
            # models in mixed-size buckets.
            planned.measured_s = share
            planned.batch_size = len(batch)
            planned.batch_width = width

    def _lifecycle(
        self,
        planned: _PlannedSlice,
        scan: ScanPassResult,
        policy: RecoveryPolicy,
    ) -> EngineTickOutcome:
        managed = planned.managed
        transitions: List[ProtectionState] = []
        recovery: Optional[RecoveryReport] = None
        reprotected = False
        # Transitions are rare (a clean tick never gets here with flags),
        # so the span is only opened when the lifecycle actually moves.
        span = (
            self.tracer.span(
                "lifecycle.transition",
                parent=self._tick_span_ctx,
                attrs={"model": managed.name},
            )
            if self.tracer.enabled and planned.flagged_rows.size
            else NULL_SPAN
        )

        def move(state: ProtectionState) -> None:
            managed.state = state
            transitions.append(state)

        # planned.flagged_rows is exactly what scan.report was built from,
        # so this size test IS scan.attack_detected — minus the per-layer
        # group-count walk the report property performs.
        if planned.flagged_rows.size:
            move(ProtectionState.FLAGGED)
            self._emit(
                FleetEventType.DETECTION,
                managed.name,
                {
                    "flagged_groups": scan.report.num_flagged_groups,
                    "shards": list(scan.shard_indices),
                    "pass_index": scan.pass_index,
                },
            )
            if policy is not RecoveryPolicy.NONE:
                move(ProtectionState.RECOVERING)
                if self.auto_reprotect:
                    # The slice only scanned part of the model, but the
                    # re-sign below accepts *all* current weights as the new
                    # golden baseline — recovering the slice alone would
                    # bake any still-unscanned corruption into the fresh
                    # signatures, where it could never be detected again.
                    # Sweep the whole model (fused fast path) and recover
                    # everything the attack touched before re-signing.
                    sweep = managed.protector.scan_fused(managed.model)
                    recovery = managed.protector.recover(
                        managed.model, sweep, policy=policy
                    )
                else:
                    recovery = managed.protector.recover(
                        managed.model, scan.report, policy=policy
                    )
                self._emit(
                    FleetEventType.RECOVERY,
                    managed.name,
                    {
                        "policy": policy.value,
                        "full_sweep": self.auto_reprotect,
                        "groups_recovered": recovery.groups_recovered,
                        "zeroed_weights": recovery.zeroed_weights,
                        "reloaded_weights": recovery.reloaded_weights,
                        "elapsed_s": recovery.elapsed_s,
                    },
                )
                if self.auto_reprotect:
                    # Zeroed groups no longer match their golden signatures,
                    # so without this re-sign every later pass would flag
                    # them again forever.
                    move(ProtectionState.REPROTECTING)
                    self._resign(managed)
                    reprotected = True
                    self._emit(
                        FleetEventType.REPROTECT,
                        managed.name,
                        {"trigger": "recovery"},
                    )
                    move(ProtectionState.PROTECTED)
        else:
            if policy is not RecoveryPolicy.NONE:
                recovery = managed.protector.recover(
                    managed.model, scan.report, policy=policy
                )
            if (
                managed.state is not ProtectionState.PROTECTED
                and scan.rotation_complete
                and scan.rotation_report is not None
                and not scan.rotation_report.attack_detected
            ):
                # A full clean rotation proves the signatures verify clean
                # again (e.g. RELOAD restored the golden weights): heal the
                # state without a re-sign.
                move(ProtectionState.PROTECTED)

        span.set_attr("transitions", [state.value for state in transitions])
        span.finish()
        return EngineTickOutcome(
            name=managed.name,
            scan=scan,
            state=managed.state,
            transitions=transitions,
            recovery=recovery,
            reprotected=reprotected,
            budget_s=planned.share,
            batch_size=planned.batch_size,
            batch_width=planned.batch_width,
            worker=planned.worker,
        )

    # -- fleet queries ------------------------------------------------------------
    def scan_all(self) -> Dict[str, DetectionReport]:
        """Stop-the-world full scan of every model (the fused fast path)."""
        self._require_models()
        return {
            name: managed.protector.scan_fused(managed.model)
            for name, managed in self._models.items()
        }

    def describe(self) -> List[Dict]:
        """One summary row per managed model (used by the CLI)."""
        rows: List[Dict] = []
        for name, managed in self._models.items():
            row: Dict = {
                "model": name,
                "state": managed.state.value,
                "layers": len(managed.protector.store),
            }
            row.update(managed.scheduler.describe())
            row["storage_kb"] = round(managed.protector.storage_overhead_kb(), 3)
            rows.append(row)
        return rows

    # -- plumbing -----------------------------------------------------------------
    def close(self) -> None:
        """Tear down both pools and every published shared-memory plane.

        Idempotent, and the engine stays usable: pools are lazily recreated
        on the next pooled tick, and process mode republishes planes (at a
        bumped generation) on the next process tick.  Models keep their
        weights — :meth:`FusedSignatures.unshare` copies each published
        plane back to process-private memory and rebinds the adopted layers
        before unlinking the segments.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._discard_proc_pool()
        for managed in self._models.values():
            if managed.scheduler.fused.shared_spec is not None:
                managed.scheduler.fused.unshare()
                managed.plane_spec = None

    def __enter__(self) -> "VerificationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-fleet"
            )
        return self._pool

    def _ensure_proc_pool(self) -> ProcessScanPool:
        if self._proc_pool is None:
            self._proc_pool = ProcessScanPool(
                self.processes, fault_plan=self.fault_plan, **self.pool_options
            )
        return self._proc_pool

    def _discard_proc_pool(self) -> None:
        """Close the pool, folding its supervision counters into the
        engine's running totals first (pools come and go; the fault
        history should not)."""
        if self._proc_pool is None:
            return
        for key, value in self._proc_pool.fault_stats().items():
            self._absorbed_pool_stats[key] = (
                self._absorbed_pool_stats.get(key, 0) + value
            )
        self._proc_pool.close()
        self._proc_pool = None

    # -- fault accounting ---------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether process scanning is currently degraded to in-process."""
        return self._degraded

    def fault_stats(self) -> Dict[str, object]:
        """Lifetime supervision counters across every pool this engine ran.

        Pool-level counters (``worker_restarts``, ``task_retries``,
        ``tasks_quarantined``, ``stale_results_dropped``,
        ``malformed_results``, ``worker_errors``, ``faults_injected``)
        accumulate across pool instances; the engine adds its own
        ``pool_failures`` / ``degraded_ticks`` totals and the live
        ``degraded`` flag.  :meth:`FleetTelemetry.observe_tick` mirrors
        these into metrics by delta.
        """
        stats: Dict[str, object] = dict(self._absorbed_pool_stats)
        if self._proc_pool is not None:
            for key, value in self._proc_pool.fault_stats().items():
                stats[key] = int(stats.get(key, 0)) + value
        stats.setdefault("worker_restarts", 0)
        stats.setdefault("task_retries", 0)
        stats.setdefault("tasks_quarantined", 0)
        stats.setdefault("faults_injected", 0)
        stats["pool_failures"] = self._pool_failures_total
        stats["degraded_ticks"] = self._degraded_ticks_total
        stats["degraded"] = self._degraded
        return stats

    def _emit(self, event_type: FleetEventType, model: str, detail: Dict) -> None:
        self.bus.emit(
            FleetEvent(
                type=event_type, model=model, tick=self._tick_index, detail=detail
            )
        )

    def _require_feasible(
        self, budget_s: float, models: Dict[str, ManagedModel]
    ) -> None:
        """A tick budget a model's largest shard can never fit inside would
        silently disable that model's protection forever (every allocation
        would grant it nothing); fail fast instead.

        The verdict only changes when the registry or a model's scheduler
        does (both bump ``_models_version``) or the budget does, so a
        passing check is memoized on ``(budget, version)`` — this runs
        every tick of every budgeted fleet.
        """
        cache_key = (budget_s, self._models_version)
        if cache_key == self._feasible_for:
            return
        needs = {
            name: managed.min_feasible_budget_s() for name, managed in models.items()
        }
        infeasible = {name: need for name, need in needs.items() if need > budget_s}
        if infeasible:
            detail = ", ".join(
                f"{name!r} needs >= {need * 1e3:.6g} ms"
                for name, need in infeasible.items()
            )
            raise ProtectionError(
                f"fleet budget of {budget_s * 1e3:.6g} ms can never cover a full "
                f"scan slice of: {detail}; raise the budget or register the "
                "model with more shards"
            )
        self._feasible_for = cache_key

    def _require_models(self) -> None:
        if not self._models:
            raise ProtectionError(
                "VerificationEngine has no registered models; "
                "call register(name, model) first"
            )
