"""Scan cost models: pricing a verification slice in seconds.

The paper's deployment constraint is *time* — checking must hide inside the
inference loop at 1–5 % overhead (Tables IV/V) — while the scheduler's knobs
are structural (``num_shards``, ``shards_per_pass``).  A :class:`ScanCostModel`
bridges the two: it prices "verify ``g`` signature groups" in seconds, so

* a :class:`~repro.core.scheduler.ScanScheduler` can size shards adaptively
  from a latency budget (:meth:`ScanScheduler.from_budget`),
* the :class:`~repro.core.service.ProtectionService` can split one fleet-wide
  budget across registered models, and
* :mod:`repro.memsim.timing` can re-price Table IV for amortized checking
  (``results/table4_amortized.json``).

Three implementations share the protocol:

* :class:`AnalyticScanCostModel` — the :class:`~repro.memsim.timing.TimingModel`
  per-group price (``group_size`` × per-weight checksum cycles, which depend on
  whether the interleaved gather breaks unit-stride access, plus the per-group
  binarize/compare cycles, divided by the platform frequency).  Deterministic
  and available before any pass has run.  Since the zero-copy scan kernel
  landed the default price carries the narrow-accumulation discount
  (``TimingConfig.narrow_accumulation_speedup`` on the per-weight term):
  budgets are sized for the kernel the scheduler actually runs, and
  ``narrow=False`` reproduces the PR-3 per-layer price.
* :class:`CacheAwareScanCostModel` — the analytic compute price *plus* the
  DRAM streaming time of the slice's weights through
  :meth:`~repro.memsim.cache.CacheHierarchy.scan_stream_time_s`.  A background
  scan slice cannot piggyback on the inference weight stream the way the
  paper's inline check does, so its weights must be re-fetched; ignoring that
  (as the pure analytic model does) under-prices every slice on
  bandwidth-bound platforms and makes budgeted rotations overrun.
* :class:`MeasuredScanCostModel` — an exponentially-weighted moving average of
  observed wall-clock seconds per group, for hosts where the analytic
  calibration constants do not apply.

The import of :mod:`repro.memsim.timing` happens lazily inside
:meth:`AnalyticScanCostModel.from_radar_config` so that ``repro.core`` keeps
its documented one-directional boundary with the memory simulator at module
import time (the same pattern :mod:`repro.core.streaming` uses for DRAM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Protocol, runtime_checkable

from repro.core.config import RadarConfig
from repro.errors import ProtectionError

if TYPE_CHECKING:  # lazy at run time; see module docstring
    from repro.memsim.cache import CacheConfig, CacheHierarchy
    from repro.memsim.timing import TimingConfig


@runtime_checkable
class ScanCostModel(Protocol):
    """Prices a verification slice: how long does checking ``g`` groups take?"""

    def pass_cost_s(self, num_groups: int) -> float:
        """Seconds to recompute and compare ``num_groups`` signatures."""
        ...

    def groups_within(self, budget_s: float) -> int:
        """Largest group count whose :meth:`pass_cost_s` fits in ``budget_s``."""
        ...


class AnalyticScanCostModel:
    """Constant seconds-per-group pricing (the memsim timing model's price)."""

    def __init__(self, seconds_per_group: float) -> None:
        if not seconds_per_group > 0:
            raise ProtectionError(
                f"seconds_per_group must be positive, got {seconds_per_group}"
            )
        self.seconds_per_group = float(seconds_per_group)

    @classmethod
    def from_radar_config(
        cls,
        radar_config: RadarConfig,
        timing_config: Optional["TimingConfig"] = None,
        narrow: bool = True,
    ) -> "AnalyticScanCostModel":
        """Price a group with :meth:`~repro.memsim.timing.TimingModel.scan_seconds_per_group`.

        ``narrow`` (the default) prices the zero-copy scan kernel's int8
        gather + int32 accumulation; ``narrow=False`` reproduces the
        pre-kernel per-layer price (kept for comparisons).
        """
        from repro.memsim.timing import TimingModel

        timing = TimingModel(timing_config)
        return cls(timing.scan_seconds_per_group(radar_config, narrow=narrow))

    def pass_cost_s(self, num_groups: int) -> float:
        if num_groups < 0:
            raise ProtectionError(f"num_groups must be >= 0, got {num_groups}")
        return num_groups * self.seconds_per_group

    def groups_within(self, budget_s: float) -> int:
        if budget_s < 0:
            raise ProtectionError(f"budget_s must be >= 0, got {budget_s}")
        return int(budget_s / self.seconds_per_group)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalyticScanCostModel(seconds_per_group={self.seconds_per_group:.3e})"


class CacheAwareScanCostModel:
    """Analytic compute price plus the DRAM cost of re-streaming the slice.

    A non-empty pass is priced affinely::

        cost(g) = g * (compute_per_group + bytes_per_group / bandwidth)
                  + dram_latency                      # stream-open, once

    with ``cost(0) = 0``.  The affine shape keeps :meth:`groups_within`
    exactly invertible, so :func:`plan_rotation`'s within-budget guarantee
    holds for cache-aware pricing too.
    """

    def __init__(
        self,
        compute_seconds_per_group: float,
        group_size: int,
        cache: Optional["CacheHierarchy"] = None,
    ) -> None:
        from repro.memsim.cache import CacheHierarchy

        if not compute_seconds_per_group > 0:
            raise ProtectionError(
                "compute_seconds_per_group must be positive, "
                f"got {compute_seconds_per_group}"
            )
        if group_size < 1:
            raise ProtectionError(f"group_size must be >= 1, got {group_size}")
        self.compute_seconds_per_group = float(compute_seconds_per_group)
        self.group_size = int(group_size)
        self.cache = cache if cache is not None else CacheHierarchy()
        self.seconds_per_group = (
            self.compute_seconds_per_group
            + self.group_size / self.cache.config.dram_bandwidth_bytes_per_s
        )

    @classmethod
    def from_radar_config(
        cls,
        radar_config: RadarConfig,
        timing_config: Optional["TimingConfig"] = None,
        cache_config: Optional["CacheConfig"] = None,
        narrow: bool = True,
    ) -> "CacheAwareScanCostModel":
        """Compute price from :meth:`~repro.memsim.timing.TimingModel.scan_seconds_per_group`,
        memory price from the (default: paper's 32 KB L1 / 64 KB L2) hierarchy.
        ``narrow`` selects the kernel (default) vs pre-kernel compute price."""
        from repro.memsim.cache import CacheHierarchy
        from repro.memsim.timing import TimingModel

        timing = TimingModel(timing_config)
        cache = CacheHierarchy(cache_config) if cache_config is not None else CacheHierarchy()
        return cls(
            timing.scan_seconds_per_group(radar_config, narrow=narrow),
            radar_config.group_size,
            cache=cache,
        )

    def pass_cost_s(self, num_groups: int) -> float:
        if num_groups < 0:
            raise ProtectionError(f"num_groups must be >= 0, got {num_groups}")
        if num_groups == 0:
            return 0.0
        return (
            num_groups * self.compute_seconds_per_group
            + self.cache.scan_stream_time_s(num_groups, self.group_size)
        )

    def groups_within(self, budget_s: float) -> int:
        if budget_s < 0:
            raise ProtectionError(f"budget_s must be >= 0, got {budget_s}")
        latency = self.cache.config.dram_latency_s
        if budget_s < self.seconds_per_group + latency:
            return 0
        affordable = int((budget_s - latency) / self.seconds_per_group)
        # The affine inversion and pass_cost_s associate their float
        # operations differently, which can disagree by an ulp; the
        # within-budget guarantee of plan_rotation must hold *exactly*
        # under pass_cost_s, so step down until it does.
        while affordable > 0 and self.pass_cost_s(affordable) > budget_s:
            affordable -= 1
        return affordable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheAwareScanCostModel(seconds_per_group={self.seconds_per_group:.3e}, "
            f"group_size={self.group_size})"
        )


class MeasuredScanCostModel:
    """EWMA of observed per-group wall-clock cost.

    Starts from a prior (``initial_seconds_per_group``, typically the analytic
    price) and folds in every observed ``(groups, elapsed)`` pair with weight
    ``alpha``, so the price tracks the actual host instead of the calibrated
    Cortex-M platform.  ``observe`` is what
    :meth:`~repro.core.scheduler.ScanScheduler.step` calls after timing a pass.
    """

    def __init__(self, initial_seconds_per_group: float, alpha: float = 0.2) -> None:
        if not initial_seconds_per_group > 0:
            raise ProtectionError(
                f"initial_seconds_per_group must be positive, got {initial_seconds_per_group}"
            )
        if not 0 < alpha <= 1:
            raise ProtectionError(f"alpha must be in (0, 1], got {alpha}")
        self.seconds_per_group = float(initial_seconds_per_group)
        self.alpha = float(alpha)
        self.observations = 0

    @classmethod
    def from_radar_config(
        cls,
        radar_config: RadarConfig,
        timing_config: Optional["TimingConfig"] = None,
        alpha: float = 0.2,
    ) -> "MeasuredScanCostModel":
        """Seed the EWMA with the analytic price, then learn from observations."""
        prior = AnalyticScanCostModel.from_radar_config(radar_config, timing_config)
        return cls(prior.seconds_per_group, alpha=alpha)

    def observe(self, num_groups: int, elapsed_s: float) -> None:
        """Fold one timed pass into the estimate."""
        if num_groups < 1:
            return  # an empty pass carries no per-group information
        if elapsed_s < 0:
            raise ProtectionError(f"elapsed_s must be >= 0, got {elapsed_s}")
        sample = elapsed_s / num_groups
        self.seconds_per_group += self.alpha * (sample - self.seconds_per_group)
        self.observations += 1

    def pass_cost_s(self, num_groups: int) -> float:
        if num_groups < 0:
            raise ProtectionError(f"num_groups must be >= 0, got {num_groups}")
        return num_groups * self.seconds_per_group

    def groups_within(self, budget_s: float) -> int:
        if budget_s < 0:
            raise ProtectionError(f"budget_s must be >= 0, got {budget_s}")
        return int(budget_s / self.seconds_per_group)

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable calibration snapshot (what a restart must keep).

        The EWMA *is* the calibration: persisting ``seconds_per_group`` and
        the observation count lets :mod:`repro.telemetry.store` restore a
        measured price without re-observing a single pass, so a restarted
        service prices budgets from the learned host speed immediately.
        """
        return {
            "seconds_per_group": float(self.seconds_per_group),
            "alpha": float(self.alpha),
            "observations": int(self.observations),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        seconds = float(state["seconds_per_group"])
        if not seconds > 0:
            raise ProtectionError(
                f"persisted seconds_per_group must be positive, got {seconds}"
            )
        alpha = float(state.get("alpha", self.alpha))
        if not 0 < alpha <= 1:
            raise ProtectionError(f"persisted alpha must be in (0, 1], got {alpha}")
        self.seconds_per_group = seconds
        self.alpha = alpha
        self.observations = int(state.get("observations", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MeasuredScanCostModel(seconds_per_group={self.seconds_per_group:.3e}, "
            f"alpha={self.alpha}, observations={self.observations})"
        )


@dataclass(frozen=True)
class BudgetPlan:
    """How a latency budget translates into a shard rotation.

    Produced by :func:`plan_rotation`; consumed by
    :meth:`~repro.core.scheduler.ScanScheduler.from_budget`.  The central
    guarantee — property-tested in ``tests/test_cost.py`` — is that
    ``per_pass_cost_s <= budget_s``: no planned pass is priced above the
    budget it was sized for.
    """

    budget_s: float
    total_groups: int
    groups_per_pass: int
    num_shards: int
    per_pass_cost_s: float
    rotation_passes: int


def plan_rotation(
    total_groups: int, budget_s: float, cost_model: ScanCostModel
) -> BudgetPlan:
    """Size a shard rotation so every pass is priced within ``budget_s``.

    Raises :class:`~repro.errors.ProtectionError` when the budget cannot
    cover even a single group — a plan that silently overruns its budget
    would defeat the point of having one.
    """
    if total_groups < 1:
        raise ProtectionError(f"total_groups must be >= 1, got {total_groups}")
    if not budget_s > 0:
        raise ProtectionError(f"budget_s must be positive, got {budget_s}")
    affordable = cost_model.groups_within(budget_s)
    if affordable < 1:
        raise ProtectionError(
            f"budget of {budget_s * 1e3:.6g} ms cannot cover a single group "
            f"(one group costs {cost_model.pass_cost_s(1) * 1e3:.6g} ms); "
            "raise the budget or use a cheaper cost model"
        )
    groups_per_pass = min(affordable, total_groups)
    num_shards = math.ceil(total_groups / groups_per_pass)
    # np.array_split gives shards of at most ceil(total/num_shards) groups,
    # which never exceeds groups_per_pass, so the largest shard stays affordable.
    largest_shard = math.ceil(total_groups / num_shards)
    return BudgetPlan(
        budget_s=float(budget_s),
        total_groups=int(total_groups),
        groups_per_pass=int(groups_per_pass),
        num_shards=int(num_shards),
        per_pass_cost_s=cost_model.pass_cost_s(largest_shard),
        rotation_passes=int(num_shards),
    )
