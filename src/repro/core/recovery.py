"""Accuracy recovery (Section V).

The paper's recovery is deliberately simple: every group flagged by the
detector has *all* of its weights set to zero (after de-interleaving back
to the original memory layout).  Because PBFA turns small weights into
large ones, and because most weights in a group are small and centred on
zero, zeroing the whole group removes the catastrophic outlier at a minor
cost to accuracy.

Two alternative policies are provided for comparison/ablation:

* ``NONE`` — detect only (the paper's "halt and wait" option without the
  halt); weights are left corrupted.
* ``RELOAD`` — restore the affected groups from a golden copy of the
  weights (models re-fetching a clean copy from flash/disk; expensive in
  practice but an upper bound on recovery quality).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.core.detector import DetectionReport
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


class RecoveryPolicy(str, Enum):
    """What to do with a flagged group."""

    ZERO = "zero"
    RELOAD = "reload"
    NONE = "none"


@dataclass
class RecoveryReport:
    """Result of a recovery pass."""

    policy: RecoveryPolicy
    zeroed_weights: int = 0
    reloaded_weights: int = 0
    groups_recovered: int = 0
    per_layer: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds the recovery pass took (what the fleet engine's
    #: ``recovery`` events report alongside the scan's ``measured_s``).
    elapsed_s: float = 0.0


def recover_model(
    model: Module,
    report: DetectionReport,
    store: SignatureStore,
    policy: RecoveryPolicy = RecoveryPolicy.ZERO,
    golden_weights: Optional[Dict[str, np.ndarray]] = None,
) -> RecoveryReport:
    """Apply the recovery policy to every flagged group of ``model`` in place."""
    if policy is RecoveryPolicy.RELOAD and golden_weights is None:
        raise ProtectionError("RELOAD recovery needs the golden weights snapshot")

    started = time.perf_counter()
    recovery = RecoveryReport(policy=policy)
    if policy is RecoveryPolicy.NONE:
        return recovery
    if not any(flagged.size for flagged in report.flagged_groups.values()):
        return recovery  # clean report: nothing to walk, nothing to touch

    layer_map = dict(quantized_layers(model))
    for layer_name, flagged in report.flagged_groups.items():
        if flagged.size == 0:
            continue
        if layer_name not in layer_map:
            raise ProtectionError(f"Flagged layer {layer_name!r} missing from model")
        layer = layer_map[layer_name]
        entry = store.layer(layer_name)
        mask = entry.layout.scatter_mask(flagged)
        flat = layer.qweight.reshape(-1)
        affected = int(mask.sum())
        if policy is RecoveryPolicy.ZERO:
            flat[mask] = 0
            recovery.zeroed_weights += affected
        elif policy is RecoveryPolicy.RELOAD:
            golden = golden_weights.get(layer_name)
            if golden is None:
                raise ProtectionError(f"Golden weights missing for layer {layer_name!r}")
            flat[mask] = golden.reshape(-1)[mask]
            recovery.reloaded_weights += affected
        recovery.groups_recovered += int(flagged.size)
        recovery.per_layer[layer_name] = affected
    recovery.elapsed_s = time.perf_counter() - started
    return recovery
