"""Secret-key masking of weights in the checksum computation (Section IV.B.1).

Each layer gets an ``N_k``-bit secret key (16 bits in the paper).  During
the checksum summation the key bit assigned to a group slot decides whether
the weight enters the sum as-is or negated (two's complement), so an
attacker who does not know the key cannot predict how a pair of flips will
move the checksum — a (0→1, 1→0) pair no longer reliably cancels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ProtectionError
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class SecretKey:
    """A per-layer masking key.

    ``bits`` is the raw key (tuple of 0/1 of length ``N_k``); the masking
    sign for the ``t``-th slot of a group cycles through the key,
    ``sign_t = +1`` when ``bits[t mod N_k] == 1`` and ``-1`` otherwise
    (Algorithm 1: a 0 key bit takes the two's complement of the weight).
    """

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ProtectionError("Secret key must have at least one bit")
        if any(bit not in (0, 1) for bit in self.bits):
            raise ProtectionError("Secret key bits must be 0 or 1")

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    @staticmethod
    def generate(num_bits: int, seed, layer_name: str = "") -> "SecretKey":
        """Derive a key for ``layer_name`` from the protector's secret seed."""
        if num_bits < 1:
            raise ProtectionError(f"num_bits must be >= 1, got {num_bits}")
        rng = new_rng(("radar-secret-key", seed, layer_name))
        bits = tuple(int(bit) for bit in rng.integers(0, 2, size=num_bits))
        return SecretKey(bits=bits)

    def signs(self, group_size: int, dtype=np.int64) -> np.ndarray:
        """Vector of ±1 masking signs for the ``group_size`` slots of a group.

        ``dtype`` selects the sign dtype; the scan kernel requests int8 so
        the masked accumulation never widens its operands.
        """
        if group_size < 1:
            raise ProtectionError(f"group_size must be >= 1, got {group_size}")
        repeated = np.resize(np.asarray(self.bits, dtype=np.int64), group_size)
        return np.where(repeated == 1, 1, -1).astype(dtype)

    def as_int(self) -> int:
        """The key packed into an integer (LSB = first bit); for display only."""
        value = 0
        for position, bit in enumerate(self.bits):
            value |= bit << position
        return value
