"""Protected inference runtime.

The paper embeds signature checking in the layer-by-layer weight streaming
of the inference computation (that is what the gem5 experiment times).  In
this reproduction the compute substrate is a NumPy framework rather than a
cache simulator, so the runtime wrapper models the same behaviour at the
granularity it has: before (or interleaved with) each batch's forward pass
it verifies all protected layers, optionally recovers, and records what
happened.  The cycle-accurate cost of doing this inside the weight
streaming loop is modelled separately by :mod:`repro.memsim.timing`.

Budgeted checking self-calibrates: in budgeted mode the default cost model
is a :class:`~repro.core.cost.MeasuredScanCostModel` seeded with the
analytic price, every check's wall-clock is folded back into it, and —
unless an explicit ``check_every`` overrides it — the check cadence is
re-derived from the calibrated price after each check, so the amortized
per-batch overhead tracks ``budget_s`` on the *actual* host rather than on
the calibrated Cortex-M platform.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.config import RadarConfig
from repro.core.cost import MeasuredScanCostModel, ScanCostModel
from repro.core.protector import ModelProtector
from repro.core.recovery import RecoveryPolicy
from repro.core.scheduler import ScanPolicy, ScanScheduler
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.layers import quantized_layers


@dataclass
class InferenceOutcome:
    """Result of one protected forward pass."""

    logits: np.ndarray
    attack_detected: bool
    flagged_groups: int
    recovered_weights: int

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1)


@dataclass
class RuntimeLog:
    """Accumulated statistics over the lifetime of a ProtectedInference object."""

    batches: int = 0
    checks: int = 0
    detections: int = 0
    flagged_groups: int = 0
    recovered_weights: int = 0
    #: Wall-clock seconds spent inside detection + recovery checks.
    check_seconds: float = 0.0
    events: List[str] = field(default_factory=list)


class ProtectedInference:
    """Wraps a quantized model with RADAR checking on every forward pass.

    Three checking modes are supported:

    * **full** (``num_shards=None``, the default): every check verifies the
      whole model, as in the paper's gem5 experiment;
    * **amortized** (``num_shards=N``): each check verifies one slice of the
      model's signature groups via a :class:`~repro.core.scheduler.ScanScheduler`,
      bounding per-batch latency while the whole model is still verified
      within one rotation (at most ``scheduler.worst_case_lag_passes`` checks);
    * **budgeted** (``budget_s=B``): the slice is sized from a per-batch
      latency budget instead of a shard count — the scheduler derives its
      shards so no check is priced above ``B`` seconds under ``cost_model``
      (a self-calibrating :class:`~repro.core.cost.MeasuredScanCostModel`
      seeded with the analytic price, by default).  Combine with
      ``num_shards`` to keep a fixed structure and merely cap its per-pass
      cost.

    ``check_every`` picks the cadence:

    * an explicit ``int`` fixes it (one check every N batches, as before);
    * ``None`` (the default) auto-tunes it in budgeted mode — the cadence is
      ``ceil(slice_cost / budget_s)`` under the *calibrated* cost model, so
      checking never exceeds an amortized ``budget_s`` per batch, and each
      check may spend the budget the skipped batches saved up.  The cadence
      is re-derived after every check as the measured price drifts.  A
      ``budget_s`` too small for even one signature group — which
      :meth:`ScanScheduler.from_budget` rejects outright — is made feasible
      by falling back to the finest possible rotation (one group per shard)
      and stretching the cadence instead.  Without a budget, ``None`` means
      every batch.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[RadarConfig] = None,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
        check_every: Optional[int] = None,
        num_shards: Optional[int] = None,
        scan_policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
        cost_model: Optional[ScanCostModel] = None,
    ) -> None:
        if check_every is not None and check_every < 1:
            raise ProtectionError("check_every must be >= 1")
        if budget_s is not None and not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        self.model = model
        self.policy = policy
        self.budget_s = budget_s
        #: Whether the cadence follows the calibrated cost model (no explicit
        #: ``check_every`` and a budget to derive it from).
        self.auto_cadence = check_every is None and budget_s is not None
        self.protector = ModelProtector(config)
        self.protector.protect(model)
        if budget_s is not None and cost_model is None:
            # Self-calibrating default: analytic prior, measured updates.
            cost_model = MeasuredScanCostModel.from_radar_config(
                self.protector.config
            )
        self.cost_model = cost_model
        self.scheduler: Optional[ScanScheduler] = None
        if budget_s is not None and num_shards is None:
            try:
                self.scheduler = self.protector.scheduler_for_budget(
                    budget_s, cost_model=cost_model, policy=scan_policy
                )
            except ProtectionError:
                if not self.auto_cadence:
                    raise
                # Budget below one group's price: use the finest rotation the
                # store allows and let the cadence stretch to afford it.
                self.scheduler = self.protector.scheduler(
                    num_shards=self.protector.store.total_groups(),
                    policy=scan_policy,
                    cost_model=cost_model,
                )
        elif num_shards is not None:
            self.scheduler = self.protector.scheduler(
                num_shards=num_shards,
                policy=scan_policy,
                shards_per_pass=shards_per_pass,
                budget_s=budget_s,
                cost_model=cost_model,
            )
        self.check_every = (
            check_every if check_every is not None else self._derived_cadence()
        )
        # Adopt the wrapped model into the fused view's zero-copy weight
        # plane, exactly as the fleet engine does for registered models: the
        # inline check path (scheduler slices and fused full scans alike)
        # then gathers straight from the buffers attacks and recovery
        # mutate, with no per-check weight copies.
        self.protector.store.fused().adopt(dict(quantized_layers(model)))
        self.log = RuntimeLog()
        self._since_last_check = 0

    def _derived_cadence(self) -> int:
        """Batches per check so amortized checking stays within ``budget_s``."""
        if not self.auto_cadence or self.scheduler is None or self.cost_model is None:
            return 1
        slice_cost = self.cost_model.pass_cost_s(self.scheduler.largest_shard_groups)
        return max(1, math.ceil(slice_cost / self.budget_s))

    def _retune_cadence(self) -> None:
        cadence = self._derived_cadence()
        if cadence != self.check_every:
            self.log.events.append(
                f"batch {self.log.batches}: check cadence retuned "
                f"{self.check_every} -> {cadence} "
                f"(calibrated slice cost vs {self.budget_s * 1e3:.4g} ms budget)"
            )
            self.check_every = cadence

    def _check(self) -> Tuple[bool, int, int]:
        """One detection + recovery round (full or amortized)."""
        started = time.perf_counter()
        if self.scheduler is None:
            # scan_fused gathers straight from the adopted plane (same
            # report as the per-layer scan, none of its weight copies).
            detection = self.protector.scan_fused(self.model)
            recovery = self.protector.recover(self.model, detection, policy=self.policy)
            elapsed = time.perf_counter() - started
            observe = getattr(self.cost_model, "observe", None)
            if observe is not None:
                observe(self.protector.store.total_groups(), elapsed)
        else:
            # In auto-cadence mode each check may spend what the skipped
            # batches saved up; the scheduler observes the measured
            # wall-clock into the cost model itself (apply_scan).
            pass_budget = (
                self.check_every * self.budget_s
                if self.auto_cadence
                else None
            )
            detection = self.scheduler.step(self.model, budget_s=pass_budget).report
            recovery = self.protector.recover(self.model, detection, policy=self.policy)
            elapsed = time.perf_counter() - started
        self.log.checks += 1
        self.log.check_seconds += elapsed
        if self.auto_cadence:
            self._retune_cadence()
        flagged = detection.num_flagged_groups
        recovered = recovery.zeroed_weights + recovery.reloaded_weights
        return detection.attack_detected, flagged, recovered

    def forward(self, images: np.ndarray) -> InferenceOutcome:
        """Run one protected inference batch."""
        attack_detected = False
        flagged = 0
        recovered = 0
        self._since_last_check += 1
        if self._since_last_check >= self.check_every:
            self._since_last_check = 0
            attack_detected, flagged, recovered = self._check()
            if attack_detected:
                self.log.detections += 1
                self.log.events.append(
                    f"batch {self.log.batches}: {flagged} flagged groups, "
                    f"{recovered} weights recovered"
                )
        self.model.eval()
        logits = self.model(images)
        self.log.batches += 1
        self.log.flagged_groups += flagged
        self.log.recovered_weights += recovered
        return InferenceOutcome(
            logits=logits,
            attack_detected=attack_detected,
            flagged_groups=flagged,
            recovered_weights=recovered,
        )

    __call__ = forward

    # -- calibration persistence -------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable calibration snapshot.

        What a restart must keep is exactly what this runtime *learned*:
        the measured cost model's EWMA price (when the cost model is
        measurable) and the cadence it settled on.  Everything else —
        signatures, scheduler structure — is rebuilt from the model and
        config at construction time.
        """
        state: Dict[str, object] = {
            "auto_cadence": bool(self.auto_cadence),
            "check_every": int(self.check_every),
            "budget_s": self.budget_s,
        }
        snapshot = getattr(self.cost_model, "state_dict", None)
        if snapshot is not None:
            state["cost_model"] = snapshot()
        return state

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot into this runtime.

        The cost-model calibration is loaded first; in auto-cadence mode
        the cadence is then *re-derived* from the restored price (not
        copied verbatim), so a snapshot taken under a different budget
        still yields a consistent cadence for this runtime's budget.
        """
        persisted = state.get("cost_model")
        loader = getattr(self.cost_model, "load_state_dict", None)
        if persisted is not None and loader is not None:
            loader(persisted)
        if self.auto_cadence:
            self._retune_cadence()
        else:
            check_every = int(state.get("check_every", self.check_every))
            if check_every < 1:
                raise ProtectionError(
                    f"persisted check_every must be >= 1, got {check_every}"
                )
            self.check_every = check_every

    def storage_overhead_kb(self) -> float:
        """Secure-storage footprint of the signatures."""
        return self.protector.storage_overhead_kb()

    @property
    def structured(self) -> bool:
        """Whether inline checks gather on the block-slice fast path.

        True when fuse-time detection proved every protected layer's
        rotated-arange structure (:class:`~repro.core.signature.PlaneStructure`);
        False means at least one layer's checks ride the general gather.
        Either way results are bit-identical — this only reports which
        engine serves the per-batch check cost.
        """
        return bool(self.protector.store.fused().structured)
