"""Protected inference runtime.

The paper embeds signature checking in the layer-by-layer weight streaming
of the inference computation (that is what the gem5 experiment times).  In
this reproduction the compute substrate is a NumPy framework rather than a
cache simulator, so the runtime wrapper models the same behaviour at the
granularity it has: before (or interleaved with) each batch's forward pass
it verifies all protected layers, optionally recovers, and records what
happened.  The cycle-accurate cost of doing this inside the weight
streaming loop is modelled separately by :mod:`repro.memsim.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import RadarConfig
from repro.core.cost import ScanCostModel
from repro.core.protector import ModelProtector
from repro.core.recovery import RecoveryPolicy
from repro.core.scheduler import ScanPolicy, ScanScheduler
from repro.errors import ProtectionError
from repro.nn.module import Module


@dataclass
class InferenceOutcome:
    """Result of one protected forward pass."""

    logits: np.ndarray
    attack_detected: bool
    flagged_groups: int
    recovered_weights: int

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1)


@dataclass
class RuntimeLog:
    """Accumulated statistics over the lifetime of a ProtectedInference object."""

    batches: int = 0
    detections: int = 0
    flagged_groups: int = 0
    recovered_weights: int = 0
    events: List[str] = field(default_factory=list)


class ProtectedInference:
    """Wraps a quantized model with RADAR checking on every forward pass.

    Three checking modes are supported:

    * **full** (``num_shards=None``, the default): every check verifies the
      whole model, as in the paper's gem5 experiment;
    * **amortized** (``num_shards=N``): each check verifies one slice of the
      model's signature groups via a :class:`~repro.core.scheduler.ScanScheduler`,
      bounding per-batch latency while the whole model is still verified
      within one rotation (at most ``scheduler.worst_case_lag_passes`` checks);
    * **budgeted** (``budget_s=B``): the slice is sized from a per-batch
      latency budget instead of a shard count — the scheduler derives its
      shards so no check is priced above ``B`` seconds under ``cost_model``
      (the analytic :class:`~repro.core.cost.AnalyticScanCostModel` by
      default).  Combine with ``num_shards`` to keep a fixed structure and
      merely cap its per-pass cost.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[RadarConfig] = None,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
        check_every: int = 1,
        num_shards: Optional[int] = None,
        scan_policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
        cost_model: Optional[ScanCostModel] = None,
    ) -> None:
        if check_every < 1:
            raise ProtectionError("check_every must be >= 1")
        self.model = model
        self.policy = policy
        self.check_every = check_every
        self.budget_s = budget_s
        self.protector = ModelProtector(config)
        self.protector.protect(model)
        self.scheduler: Optional[ScanScheduler] = None
        if budget_s is not None and num_shards is None:
            self.scheduler = self.protector.scheduler_for_budget(
                budget_s, cost_model=cost_model, policy=scan_policy
            )
        elif num_shards is not None:
            self.scheduler = self.protector.scheduler(
                num_shards=num_shards,
                policy=scan_policy,
                shards_per_pass=shards_per_pass,
                budget_s=budget_s,
                cost_model=cost_model,
            )
        self.log = RuntimeLog()
        self._since_last_check = 0

    def _check(self) -> Tuple[bool, int, int]:
        """One detection + recovery round (full or amortized)."""
        if self.scheduler is None:
            summary = self.protector.scan_and_recover(self.model, policy=self.policy)
            detection, recovery = summary.detection, summary.recovery
        else:
            detection = self.scheduler.step(self.model).report
            recovery = self.protector.recover(self.model, detection, policy=self.policy)
        flagged = detection.num_flagged_groups
        recovered = recovery.zeroed_weights + recovery.reloaded_weights
        return detection.attack_detected, flagged, recovered

    def forward(self, images: np.ndarray) -> InferenceOutcome:
        """Run one protected inference batch."""
        attack_detected = False
        flagged = 0
        recovered = 0
        self._since_last_check += 1
        if self._since_last_check >= self.check_every:
            self._since_last_check = 0
            attack_detected, flagged, recovered = self._check()
            if attack_detected:
                self.log.detections += 1
                self.log.events.append(
                    f"batch {self.log.batches}: {flagged} flagged groups, "
                    f"{recovered} weights recovered"
                )
        self.model.eval()
        logits = self.model(images)
        self.log.batches += 1
        self.log.flagged_groups += flagged
        self.log.recovered_weights += recovered
        return InferenceOutcome(
            logits=logits,
            attack_detected=attack_detected,
            flagged_groups=flagged,
            recovered_weights=recovered,
        )

    __call__ = forward

    def storage_overhead_kb(self) -> float:
        """Secure-storage footprint of the signatures."""
        return self.protector.storage_overhead_kb()
