"""Streaming verification of weights fetched from DRAM.

The paper embeds the signature check in the inference weight-streaming loop:
every chunk of weights fetched from DRAM is checked (and, if flagged,
neutralized) *before* the compute engine consumes it, so a run-time attack
never influences an output.  :class:`ProtectedInference` models that at the
whole-model granularity the NumPy substrate offers; this module provides the
finer-grained view for users who drive the :class:`~repro.memsim.dram.DramModule`
directly — it consumes raw int8 weight streams (one layer at a time, exactly
what a DMA engine would deliver) without ever needing the ``Module`` object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.detector import DetectionReport
from repro.core.recovery import RecoveryPolicy
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError

if TYPE_CHECKING:  # imported lazily at run time to avoid a core <-> memsim import cycle
    from repro.core.cost import ScanCostModel
    from repro.memsim.dram import DramModule


@dataclass
class StreamEvent:
    """What happened while verifying one layer's weight stream."""

    layer_name: str
    flagged_groups: np.ndarray
    zeroed_weights: int = 0

    @property
    def attack_detected(self) -> bool:
        return self.flagged_groups.size > 0


@dataclass
class StreamReport:
    """Aggregate of a (possibly partial) pass over the weight stream."""

    events: Dict[str, StreamEvent] = field(default_factory=dict)
    #: Groups this report actually verified (a budgeted slice may cover few).
    groups_checked: int = 0
    #: Whether the verifier's rotation over all layers completed with this
    #: report (always true for the unbudgeted full-stream methods).
    rotation_complete: bool = True

    @property
    def attack_detected(self) -> bool:
        return any(event.attack_detected for event in self.events.values())

    @property
    def flagged_groups(self) -> int:
        return int(sum(event.flagged_groups.size for event in self.events.values()))

    @property
    def zeroed_weights(self) -> int:
        return int(sum(event.zeroed_weights for event in self.events.values()))

    def as_detection_report(self) -> DetectionReport:
        """The equivalent :class:`DetectionReport` (for the recovery helpers)."""
        return DetectionReport(
            flagged_groups={name: event.flagged_groups for name, event in self.events.items()}
        )


class StreamingVerifier:
    """Checks int8 weight streams against a golden :class:`SignatureStore`.

    Unlike :class:`~repro.core.detector.RadarDetector` it does not touch the
    model object at all: it consumes the flat int8 payloads an inference
    engine would fetch layer by layer, which is exactly the paper's deployment
    model (verification on the DRAM-to-cache stream).
    """

    def __init__(
        self, store: SignatureStore, cost_model: Optional["ScanCostModel"] = None
    ) -> None:
        if len(store) == 0:
            raise ProtectionError("Signature store is empty; call store.build(model) first")
        self.store = store
        #: Prices budgeted slices (:meth:`verify_dram_budgeted`); defaults
        #: lazily to the analytic model.  Models with an ``observe`` hook
        #: (e.g. :class:`~repro.core.cost.MeasuredScanCostModel`) are fed
        #: every budgeted pass's measured wall-clock, so stream-level budgets
        #: self-calibrate the same way the scheduler's do.
        self.cost_model = cost_model
        # Budgeted-verification cursor: (layer position, group offset) of the
        # next unverified group in the current rotation.
        self._cursor = (0, 0)

    # -- single layer -----------------------------------------------------------
    def verify_layer(
        self,
        layer_name: str,
        qweight_flat: np.ndarray,
        groups: Optional[np.ndarray] = None,
    ) -> StreamEvent:
        """Verify one layer's streamed weights and report its flagged groups.

        ``groups`` restricts the check to the listed group indices — the
        stream-level counterpart of one :class:`~repro.core.scheduler.ScanScheduler`
        shard slice; ``None`` verifies every group of the layer.

        Verification runs on the scan kernel's per-layer arrays
        (:meth:`~repro.core.signature.FusedSignatures.layer_stream_signatures`):
        precomputed gather indices and int8 sign mask with narrow (int32)
        accumulation, instead of re-deriving the layout's index matrix and
        promoting every streamed weight to int64 per call.
        """
        entry = self.store.layer(layer_name)
        qweight_flat = np.asarray(qweight_flat)
        # Dtype/shape validation happens in layer_stream_signatures — one
        # validator, one error message.
        fused = self.store.fused()
        if groups is None:
            current = fused.layer_stream_signatures(layer_name, qweight_flat)
            flagged = np.nonzero(current != entry.golden)[0].astype(np.int64)
        else:
            groups = np.atleast_1d(np.asarray(groups, dtype=np.int64))
            current = fused.layer_stream_signatures(
                layer_name, qweight_flat, groups=groups
            )
            flagged = np.unique(groups[current != entry.golden[groups]])
        return StreamEvent(layer_name=layer_name, flagged_groups=flagged)

    def repair_layer(
        self,
        layer_name: str,
        qweight_flat: np.ndarray,
        event: Optional[StreamEvent] = None,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
    ) -> Tuple[np.ndarray, StreamEvent]:
        """Return a repaired copy of the stream (flagged groups zeroed).

        ``policy`` accepts ZERO (the paper's scheme) or NONE (detect only);
        RELOAD needs a golden weight copy, which a stream verifier does not
        hold — use :func:`repro.core.recovery.recover_model` for that.
        """
        if policy is RecoveryPolicy.RELOAD:
            raise ProtectionError("StreamingVerifier cannot RELOAD; it holds no golden weights")
        if event is None:
            event = self.verify_layer(layer_name, qweight_flat)
        repaired = np.asarray(qweight_flat).copy()
        if policy is RecoveryPolicy.ZERO and event.flagged_groups.size:
            entry = self.store.layer(layer_name)
            mask = entry.layout.scatter_mask(event.flagged_groups)
            repaired[mask] = 0
            event.zeroed_weights = int(mask.sum())
        return repaired, event

    # -- whole stream -----------------------------------------------------------
    def iter_dram(self, dram: "DramModule") -> Iterator[Tuple[str, np.ndarray]]:
        """Iterate the protected layers' weight streams out of a DRAM image."""
        for layer_name in self.store.layer_names():
            if layer_name not in dram.address_map.ranges:
                raise ProtectionError(f"Layer {layer_name!r} is not present in the DRAM image")
            yield layer_name, dram.read_layer(layer_name)

    def verify_dram(self, dram: "DramModule") -> StreamReport:
        """Verify every protected layer directly from the DRAM image."""
        report = StreamReport()
        for layer_name, stream in self.iter_dram(dram):
            report.events[layer_name] = self.verify_layer(layer_name, stream)
        report.groups_checked = self.store.total_groups()
        return report

    def verify_dram_budgeted(
        self,
        dram: "DramModule",
        budget_s: float,
        cost_model: Optional["ScanCostModel"] = None,
    ) -> StreamReport:
        """Verify the next budget's worth of groups out of the DRAM image.

        The stream-level counterpart of a budgeted
        :meth:`~repro.core.scheduler.ScanScheduler.step`: each call checks as
        many consecutive groups (layer by layer, resuming from an internal
        cursor) as ``cost_model`` prices within ``budget_s``, and reports
        ``rotation_complete=True`` on the call that finishes the last layer.
        ``cost_model`` overrides the verifier's own (constructor) model for
        this call; with neither given, the analytic model priced from the
        store's config is instantiated and kept.  A budget too small for a
        single group verifies nothing — the report then simply has no events
        and the cursor does not move.
        """
        from repro.core.cost import AnalyticScanCostModel

        if not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        if cost_model is None:
            if self.cost_model is None:
                self.cost_model = AnalyticScanCostModel.from_radar_config(
                    self.store.config
                )
            cost_model = self.cost_model
        started = time.perf_counter()
        model = cost_model
        remaining = model.groups_within(budget_s)
        report = StreamReport(rotation_complete=False)
        layer_names = self.store.layer_names()
        position, offset = self._cursor
        while remaining > 0:
            layer_name = layer_names[position]
            entry = self.store.layer(layer_name)
            take = min(remaining, entry.num_groups - offset)
            groups = np.arange(offset, offset + take, dtype=np.int64)
            if layer_name not in dram.address_map.ranges:
                raise ProtectionError(f"Layer {layer_name!r} is not present in the DRAM image")
            event = self.verify_layer(layer_name, dram.read_layer(layer_name), groups=groups)
            report.events[layer_name] = event
            report.groups_checked += take
            remaining -= take
            offset += take
            if offset >= entry.num_groups:
                position += 1
                offset = 0
                if position >= len(layer_names):
                    report.rotation_complete = True
                    position = 0
                    break
        self._cursor = (position, offset)
        if report.groups_checked:
            observe = getattr(model, "observe", None)
            if observe is not None:
                observe(report.groups_checked, time.perf_counter() - started)
        return report

    def verify_and_repair_dram(
        self, dram: "DramModule", policy: RecoveryPolicy = RecoveryPolicy.ZERO
    ) -> Tuple[Dict[str, np.ndarray], StreamReport]:
        """Verify the DRAM image and return repaired per-layer weight streams.

        The DRAM image itself is left untouched (the physical memory stays
        corrupted, as in the paper); the repaired streams are what the compute
        engine should consume.
        """
        report = StreamReport()
        repaired: Dict[str, np.ndarray] = {}
        for layer_name, stream in self.iter_dram(dram):
            repaired_stream, event = self.repair_layer(layer_name, stream, policy=policy)
            repaired[layer_name] = repaired_stream
            report.events[layer_name] = event
        report.groups_checked = self.store.total_groups()
        return repaired, report
