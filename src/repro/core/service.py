"""Fleet protection façade: the PR 1–2 registry API over the fleet engine.

A serving deployment rarely hosts a single network; the
:class:`ProtectionService` keeps a registry of protected models and advances
every model's amortized scan rotation once per ``step()``.  Since the fleet
engine landed (:mod:`repro.core.fleet`) the service is a thin façade over a
:class:`~repro.core.fleet.VerificationEngine`: registration, budget
allocation, and the per-tick scan all delegate to the engine — which
adopts every model into a zero-copy weight plane and coalesces all slices
sharing a kernel bucket (``group_size``, ``signature_bits``) into batched
stacked passes, heterogeneous architectures included — while this class
preserves the original caller-driven semantics:

* :meth:`step` detects only (engine tick with ``RecoveryPolicy.NONE``);
* :meth:`step_and_recover` recovers what the pass flagged but does **not**
  re-sign — callers keep explicit control of :meth:`reprotect`, exactly as
  before.  For the automatic detect → recover → reprotect loop, use the
  engine directly (``service.engine`` or a standalone
  :class:`~repro.core.fleet.VerificationEngine`).

Budgeted fleet ticks
--------------------
Instead of stepping every model a fixed structural slice, the service can
spread **one fleet-wide latency budget** over the registry: pass ``budget_s``
to :meth:`ProtectionService.step` / :meth:`step_and_recover` (or set a
default at construction).  :meth:`allocate_budget` hands the budget out in
*urgency* order — exposure backlog plus flagged-flip history — with each
model claiming exactly the priced cost of the shard slice it can afford
from what is left.  A model that is falling behind or sitting in a blast
radius therefore claims first; one whose leftover share affords nothing
scans nothing this tick, accumulates backlog, and preempts its peers on a
later tick.  Each model's :class:`~repro.core.cost.ScanCostModel` does the
pricing (see :meth:`ScanScheduler.step`).

Every returned :class:`~repro.core.scheduler.ScanPassResult` carries
``measured_s`` — the wall-clock the model's verification actually spent
(its share of a batched pass) — alongside the planned cost, so budget
accounting can be validated end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import RadarConfig
from repro.core.cost import ScanCostModel
from repro.core.detector import DetectionReport
from repro.core.fleet import ManagedModel, VerificationEngine
from repro.core.recovery import RecoveryPolicy, RecoveryReport
from repro.core.scheduler import ScanPassResult, ScanPolicy
from repro.nn.module import Module

__all__ = ["ManagedModel", "ProtectionService", "ServiceStepOutcome"]


@dataclass
class ServiceStepOutcome:
    """Result of one service pass over a single managed model."""

    name: str
    scan: ScanPassResult
    recovery: Optional[RecoveryReport] = None
    #: Share of the fleet-wide budget this model was stepped with, if any.
    budget_s: Optional[float] = None

    @property
    def attack_detected(self) -> bool:
        return self.scan.attack_detected

    @property
    def measured_s(self) -> Optional[float]:
        """Wall-clock seconds the model's scan actually spent."""
        return self.scan.measured_s


class ProtectionService:
    """Registry of protected models sharing an amortized scan budget.

    Typical use::

        service = ProtectionService(num_shards=8)
        service.register("lane-a", model_a)
        service.register("lane-b", model_b, config=RadarConfig(group_size=8))
        ...
        outcomes = service.step_and_recover()   # once per serving tick

    Budget-driven use (one latency budget for the whole fleet per tick)::

        service = ProtectionService(budget_s=2e-3)      # 2 ms per tick
        service.register("lane-a", model_a)
        service.register("lane-b", model_b)
        outcomes = service.step_and_recover()           # splits the 2 ms

    ``workers`` is forwarded to the underlying engine's batch-group thread
    pool (only fleets mixing group sizes or signature widths produce more
    than one kernel bucket per tick), and ``max_padding_waste`` to its
    width-disparity guard for bucketed padded stacking (``None`` disables
    sub-splitting).  For SLA telemetry, attach a
    :class:`~repro.telemetry.monitor.FleetTelemetry` to ``service.engine``.
    """

    def __init__(
        self,
        default_config: Optional[RadarConfig] = None,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
        workers: int = 1,
        max_padding_waste: Optional[float] = 0.5,
    ) -> None:
        #: The fleet engine doing the actual work.  Exposed so callers can
        #: opt into engine-level features (event bus, automatic reprotect via
        #: ``engine.tick``) without abandoning the façade.
        self.engine = VerificationEngine(
            default_config=default_config,
            num_shards=num_shards,
            policy=policy,
            shards_per_pass=shards_per_pass,
            budget_s=budget_s,
            workers=workers,
            max_padding_waste=max_padding_waste,
            recovery_policy=RecoveryPolicy.ZERO,
            # The façade preserves PR 1–2 semantics: recovery happens on
            # request, re-signing only via an explicit reprotect() call.
            auto_reprotect=False,
        )

    # -- mirrored configuration -------------------------------------------------
    @property
    def default_config(self) -> RadarConfig:
        return self.engine.default_config

    @property
    def num_shards(self) -> int:
        return self.engine.num_shards

    @property
    def policy(self) -> ScanPolicy:
        return self.engine.policy

    @property
    def shards_per_pass(self) -> int:
        return self.engine.shards_per_pass

    @property
    def budget_s(self) -> Optional[float]:
        return self.engine.budget_s

    # -- registry ---------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Module,
        config: Optional[RadarConfig] = None,
        num_shards: Optional[int] = None,
        policy: Optional[ScanPolicy] = None,
        shards_per_pass: Optional[int] = None,
        keep_golden_weights: bool = False,
        cost_model: Optional[ScanCostModel] = None,
    ) -> ManagedModel:
        """Protect ``model`` and enrol it in the scan rotation.

        ``cost_model`` prices this model's scan slices for budgeted ticks;
        it defaults to the analytic model derived from the model's
        :class:`~repro.core.config.RadarConfig`.
        """
        return self.engine.register(
            name,
            model,
            config=config,
            num_shards=num_shards,
            policy=policy,
            shards_per_pass=shards_per_pass,
            keep_golden_weights=keep_golden_weights,
            cost_model=cost_model,
        )

    def unregister(self, name: str) -> ManagedModel:
        return self.engine.unregister(name)

    def reprotect(self, name: str) -> ManagedModel:
        """Re-sign a model after a legitimate weight update.

        Rebuilds the golden signatures from the model's *current* weights and
        replaces its scheduler with a fresh rotation (same structural
        options), so the scan restarts from a clean slate — the eviction /
        re-protect lifecycle for models whose weights were deliberately
        updated in place.  Without this, an updated model would be
        indistinguishable from an attacked one.
        """
        return self.engine.reprotect(name)

    def get(self, name: str) -> ManagedModel:
        return self.engine.get(name)

    def names(self) -> List[str]:
        return self.engine.names()

    def __len__(self) -> int:
        return len(self.engine)

    def __contains__(self, name: str) -> bool:
        return name in self.engine

    # -- fleet operations ---------------------------------------------------------
    def allocate_budget(self, budget_s: float) -> Dict[str, float]:
        """Split one fleet-wide tick budget across the registered models
        (see :meth:`VerificationEngine.allocate_budget`)."""
        return self.engine.allocate_budget(budget_s)

    def step(self, budget_s: Optional[float] = None) -> Dict[str, ScanPassResult]:
        """One amortized scan pass over every registered model (detect only).

        With a budget (argument or service default) each model is stepped
        with its :meth:`allocate_budget` share; otherwise every model scans
        its fixed structural slice.  Structurally identical models are
        verified together in one batched pass; each result's ``measured_s``
        is the wall-clock its model's share actually took.
        """
        outcomes = self.engine.tick(
            budget_s=budget_s, recovery_policy=RecoveryPolicy.NONE
        )
        return {name: outcome.scan for name, outcome in outcomes.items()}

    def step_and_recover(
        self,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
        budget_s: Optional[float] = None,
    ) -> Dict[str, ServiceStepOutcome]:
        """One amortized pass per model, recovering whatever the pass flagged."""
        outcomes = self.engine.tick(budget_s=budget_s, recovery_policy=policy)
        return {
            name: ServiceStepOutcome(
                name=name,
                scan=outcome.scan,
                recovery=outcome.recovery
                if outcome.recovery is not None
                else RecoveryReport(policy=RecoveryPolicy(policy)),
                budget_s=outcome.budget_s,
            )
            for name, outcome in outcomes.items()
        }

    def scan_all(self) -> Dict[str, DetectionReport]:
        """Stop-the-world full scan of every model (the fused fast path)."""
        return self.engine.scan_all()

    def describe(self) -> List[Dict]:
        """One summary row per managed model (used by the CLI)."""
        return self.engine.describe()
