"""Fleet protection: one registry managing many protected models.

A serving deployment rarely hosts a single network; the
:class:`ProtectionService` keeps a :class:`~repro.core.protector.ModelProtector`
and an amortized :class:`~repro.core.scheduler.ScanScheduler` per registered
model so one ``step()`` call advances every model's scan rotation by one
bounded-cost slice.  The registry is what the ``repro-radar serve-demo``
subcommand drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import RadarConfig
from repro.core.detector import DetectionReport
from repro.core.protector import ModelProtector
from repro.core.recovery import RecoveryPolicy, RecoveryReport
from repro.core.scheduler import ScanPassResult, ScanPolicy, ScanScheduler
from repro.errors import ProtectionError
from repro.nn.module import Module


@dataclass
class ManagedModel:
    """One registered model and its protection state."""

    name: str
    model: Module
    protector: ModelProtector
    scheduler: ScanScheduler


@dataclass
class ServiceStepOutcome:
    """Result of one service pass over a single managed model."""

    name: str
    scan: ScanPassResult
    recovery: Optional[RecoveryReport] = None

    @property
    def attack_detected(self) -> bool:
        return self.scan.attack_detected


class ProtectionService:
    """Registry of protected models sharing an amortized scan budget.

    Typical use::

        service = ProtectionService(num_shards=8)
        service.register("lane-a", model_a)
        service.register("lane-b", model_b, config=RadarConfig(group_size=8))
        ...
        outcomes = service.step_and_recover()   # once per serving tick
    """

    def __init__(
        self,
        default_config: Optional[RadarConfig] = None,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
    ) -> None:
        self.default_config = default_config or RadarConfig()
        self.num_shards = num_shards
        self.policy = ScanPolicy(policy)
        self.shards_per_pass = shards_per_pass
        self._models: Dict[str, ManagedModel] = {}

    # -- registry ---------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Module,
        config: Optional[RadarConfig] = None,
        num_shards: Optional[int] = None,
        policy: Optional[ScanPolicy] = None,
        shards_per_pass: Optional[int] = None,
        keep_golden_weights: bool = False,
    ) -> ManagedModel:
        """Protect ``model`` and enrol it in the scan rotation."""
        if not name:
            raise ProtectionError("Managed model name must be non-empty")
        if name in self._models:
            raise ProtectionError(f"Model {name!r} is already registered")
        protector = ModelProtector(config or self.default_config)
        protector.protect(model, keep_golden_weights=keep_golden_weights)
        scheduler = ScanScheduler(
            protector.store,
            num_shards=num_shards if num_shards is not None else self.num_shards,
            policy=policy if policy is not None else self.policy,
            shards_per_pass=(
                shards_per_pass if shards_per_pass is not None else self.shards_per_pass
            ),
        )
        managed = ManagedModel(name=name, model=model, protector=protector, scheduler=scheduler)
        self._models[name] = managed
        return managed

    def unregister(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        return self._models.pop(name)

    def get(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        return self._models[name]

    def names(self) -> List[str]:
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    # -- fleet operations ---------------------------------------------------------
    def step(self) -> Dict[str, ScanPassResult]:
        """One amortized scan pass over every registered model (detect only)."""
        self._require_models()
        return {
            name: managed.scheduler.step(managed.model)
            for name, managed in self._models.items()
        }

    def step_and_recover(
        self, policy: RecoveryPolicy = RecoveryPolicy.ZERO
    ) -> Dict[str, ServiceStepOutcome]:
        """One amortized pass per model, recovering whatever the pass flagged."""
        self._require_models()
        outcomes: Dict[str, ServiceStepOutcome] = {}
        for name, managed in self._models.items():
            scan = managed.scheduler.step(managed.model)
            recovery = managed.protector.recover(managed.model, scan.report, policy=policy)
            outcomes[name] = ServiceStepOutcome(name=name, scan=scan, recovery=recovery)
        return outcomes

    def scan_all(self) -> Dict[str, DetectionReport]:
        """Stop-the-world full scan of every model (the fused fast path)."""
        self._require_models()
        return {
            name: managed.protector.scan_fused(managed.model)
            for name, managed in self._models.items()
        }

    def describe(self) -> List[Dict]:
        """One summary row per managed model (used by the CLI)."""
        rows: List[Dict] = []
        for name, managed in self._models.items():
            row: Dict = {"model": name, "layers": len(managed.protector.store)}
            row.update(managed.scheduler.describe())
            row["storage_kb"] = round(managed.protector.storage_overhead_kb(), 3)
            rows.append(row)
        return rows

    def _require_models(self) -> None:
        if not self._models:
            raise ProtectionError(
                "ProtectionService has no registered models; call register(name, model) first"
            )
