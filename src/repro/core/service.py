"""Fleet protection: one registry managing many protected models.

A serving deployment rarely hosts a single network; the
:class:`ProtectionService` keeps a :class:`~repro.core.protector.ModelProtector`
and an amortized :class:`~repro.core.scheduler.ScanScheduler` per registered
model so one ``step()`` call advances every model's scan rotation by one
bounded-cost slice.  The registry is what the ``repro-radar serve-demo``
subcommand drives.

Budgeted fleet ticks
--------------------
Instead of stepping every model a fixed structural slice, the service can
spread **one fleet-wide latency budget** over the registry: pass ``budget_s``
to :meth:`ProtectionService.step` / :meth:`step_and_recover` (or set a
default at construction).  :meth:`allocate_budget` hands the budget out in
*urgency* order — exposure backlog plus flagged-flip history — with each
model claiming exactly the priced cost of the shard slice it can afford
from what is left.  A model that is falling behind or sitting in a blast
radius therefore claims first; one whose leftover share affords nothing
scans nothing this tick, accumulates backlog, and preempts its peers on a
later tick.  Each model's :class:`~repro.core.cost.ScanCostModel` does the
pricing (see :meth:`ScanScheduler.step`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import RadarConfig
from repro.core.cost import AnalyticScanCostModel, ScanCostModel
from repro.core.detector import DetectionReport
from repro.core.protector import ModelProtector
from repro.core.recovery import RecoveryPolicy, RecoveryReport
from repro.core.scheduler import ScanPassResult, ScanPolicy, ScanScheduler
from repro.errors import ProtectionError
from repro.nn.module import Module


@dataclass
class ManagedModel:
    """One registered model and its protection state."""

    name: str
    model: Module
    protector: ModelProtector
    scheduler: ScanScheduler
    cost_model: Optional[ScanCostModel] = None
    keep_golden_weights: bool = False
    #: Constructor arguments the scheduler was built with, so
    #: :meth:`ProtectionService.reprotect` can rebuild an identical one
    #: against the re-signed store.
    scheduler_options: Dict = field(default_factory=dict)

    def min_feasible_budget_s(self) -> float:
        """Cost of this model's largest shard — the least budget that can
        ever advance its rotation past that shard."""
        largest = max(info.num_groups for info in self.scheduler.shard_info())
        cost_model = self.cost_model or AnalyticScanCostModel.from_radar_config(
            self.protector.config
        )
        return cost_model.pass_cost_s(largest)

    def urgency(self) -> float:
        """Budget-allocation rank: exposure backlog plus flagged history.

        The backlog term is the *mean* shard exposure (not the max): a model
        that scans one shard per tick still ages its other shards, so the max
        cannot distinguish it from a model that scans nothing.  The mean
        drops with every scanned shard, which is what lets an underfunded
        model overtake its peers on the next tick.
        """
        info = self.scheduler.shard_info()
        flagged = sum(entry.times_flagged for entry in info)
        backlog = sum(entry.exposure_passes for entry in info) / max(len(info), 1)
        return 1.0 + backlog + flagged


@dataclass
class ServiceStepOutcome:
    """Result of one service pass over a single managed model."""

    name: str
    scan: ScanPassResult
    recovery: Optional[RecoveryReport] = None
    #: Share of the fleet-wide budget this model was stepped with, if any.
    budget_s: Optional[float] = None

    @property
    def attack_detected(self) -> bool:
        return self.scan.attack_detected


class ProtectionService:
    """Registry of protected models sharing an amortized scan budget.

    Typical use::

        service = ProtectionService(num_shards=8)
        service.register("lane-a", model_a)
        service.register("lane-b", model_b, config=RadarConfig(group_size=8))
        ...
        outcomes = service.step_and_recover()   # once per serving tick

    Budget-driven use (one latency budget for the whole fleet per tick)::

        service = ProtectionService(budget_s=2e-3)      # 2 ms per tick
        service.register("lane-a", model_a)
        service.register("lane-b", model_b)
        outcomes = service.step_and_recover()           # splits the 2 ms
    """

    def __init__(
        self,
        default_config: Optional[RadarConfig] = None,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        budget_s: Optional[float] = None,
    ) -> None:
        if num_shards < 1:
            raise ProtectionError(f"num_shards must be >= 1, got {num_shards}")
        if shards_per_pass < 1:
            raise ProtectionError(f"shards_per_pass must be >= 1, got {shards_per_pass}")
        if shards_per_pass > num_shards:
            raise ProtectionError(
                f"shards_per_pass must be within [1, num_shards]; "
                f"got shards_per_pass={shards_per_pass} with num_shards={num_shards}"
            )
        if budget_s is not None and not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        self.default_config = default_config or RadarConfig()
        self.num_shards = num_shards
        self.policy = ScanPolicy(policy)
        self.shards_per_pass = shards_per_pass
        self.budget_s = budget_s
        self._models: Dict[str, ManagedModel] = {}

    # -- registry ---------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Module,
        config: Optional[RadarConfig] = None,
        num_shards: Optional[int] = None,
        policy: Optional[ScanPolicy] = None,
        shards_per_pass: Optional[int] = None,
        keep_golden_weights: bool = False,
        cost_model: Optional[ScanCostModel] = None,
    ) -> ManagedModel:
        """Protect ``model`` and enrol it in the scan rotation.

        ``cost_model`` prices this model's scan slices for budgeted ticks;
        it defaults to the analytic model derived from the model's
        :class:`~repro.core.config.RadarConfig`.
        """
        if not name:
            raise ProtectionError("Managed model name must be non-empty")
        if name in self._models:
            raise ProtectionError(f"Model {name!r} is already registered")
        radar_config = config or self.default_config
        protector = ModelProtector(radar_config)
        protector.protect(model, keep_golden_weights=keep_golden_weights)
        resolved_cost_model = cost_model or AnalyticScanCostModel.from_radar_config(
            radar_config
        )
        scheduler_options = {
            "num_shards": num_shards if num_shards is not None else self.num_shards,
            "policy": policy if policy is not None else self.policy,
            "shards_per_pass": (
                shards_per_pass if shards_per_pass is not None else self.shards_per_pass
            ),
        }
        scheduler = ScanScheduler(
            protector.store, cost_model=resolved_cost_model, **scheduler_options
        )
        managed = ManagedModel(
            name=name,
            model=model,
            protector=protector,
            scheduler=scheduler,
            cost_model=resolved_cost_model,
            keep_golden_weights=keep_golden_weights,
            scheduler_options=scheduler_options,
        )
        if self.budget_s is not None:
            self._require_feasible(self.budget_s, {name: managed})
        self._models[name] = managed
        return managed

    def unregister(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        return self._models.pop(name)

    def reprotect(self, name: str) -> ManagedModel:
        """Re-sign a model after a legitimate weight update.

        Rebuilds the golden signatures from the model's *current* weights and
        replaces its scheduler with a fresh one (same structural options), so
        the scan rotation restarts from a clean slate — the eviction /
        re-protect lifecycle for models whose weights were deliberately
        updated in place.  Without this, an updated model would be
        indistinguishable from an attacked one.
        """
        managed = self.get(name)
        managed.protector.protect(
            managed.model, keep_golden_weights=managed.keep_golden_weights
        )
        managed.scheduler = ScanScheduler(
            managed.protector.store,
            cost_model=managed.cost_model,
            **managed.scheduler_options,
        )
        return managed

    def get(self, name: str) -> ManagedModel:
        if name not in self._models:
            raise ProtectionError(f"Model {name!r} is not registered")
        return self._models[name]

    def names(self) -> List[str]:
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    # -- fleet operations ---------------------------------------------------------
    def allocate_budget(self, budget_s: float) -> Dict[str, float]:
        """Split one fleet-wide tick budget across the registered models.

        Models claim budget in :meth:`ManagedModel.urgency` order (exposure
        backlog plus flagged history; registration order breaks ties): each
        claims exactly the priced cost of the shard slice it can afford from
        what is left, and the remainder flows to the next model.  A model
        whose leftover cannot cover one of its shards gets a zero share this
        tick — its backlog then grows, so it claims first on a later tick
        instead of silently overrunning the budget.  Shares therefore sum to
        at most ``budget_s``.
        """
        self._require_models()
        if not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        self._require_feasible(budget_s, self._models)
        by_urgency = sorted(
            self._models, key=lambda name: -self._models[name].urgency()
        )
        shares: Dict[str, float] = {}
        remaining = budget_s
        for name in by_urgency:
            share = self._models[name].scheduler.planned_slice_cost_s(
                budget_s=remaining
            )
            shares[name] = share
            remaining -= share
        return shares

    def _tick_budgets(self, budget_s: Optional[float]) -> Dict[str, Optional[float]]:
        # Each scheduler re-derives its slice from the share inside step();
        # planner ordering is pure, so both plans agree.  The duplicated
        # planning is O(shards log shards) per model — noise next to the
        # vectorized signature recomputation the slice itself costs.
        budget = budget_s if budget_s is not None else self.budget_s
        if budget is None:
            return {name: None for name in self._models}
        return dict(self.allocate_budget(budget))

    def step(self, budget_s: Optional[float] = None) -> Dict[str, ScanPassResult]:
        """One amortized scan pass over every registered model (detect only).

        With a budget (argument or service default) each model is stepped
        with its :meth:`allocate_budget` share; otherwise every model scans
        its fixed structural slice.
        """
        self._require_models()
        shares = self._tick_budgets(budget_s)
        return {
            name: managed.scheduler.step(managed.model, budget_s=shares[name])
            for name, managed in self._models.items()
        }

    def step_and_recover(
        self,
        policy: RecoveryPolicy = RecoveryPolicy.ZERO,
        budget_s: Optional[float] = None,
    ) -> Dict[str, ServiceStepOutcome]:
        """One amortized pass per model, recovering whatever the pass flagged."""
        self._require_models()
        shares = self._tick_budgets(budget_s)
        outcomes: Dict[str, ServiceStepOutcome] = {}
        for name, managed in self._models.items():
            scan = managed.scheduler.step(managed.model, budget_s=shares[name])
            recovery = managed.protector.recover(managed.model, scan.report, policy=policy)
            outcomes[name] = ServiceStepOutcome(
                name=name, scan=scan, recovery=recovery, budget_s=shares[name]
            )
        return outcomes

    def scan_all(self) -> Dict[str, DetectionReport]:
        """Stop-the-world full scan of every model (the fused fast path)."""
        self._require_models()
        return {
            name: managed.protector.scan_fused(managed.model)
            for name, managed in self._models.items()
        }

    def describe(self) -> List[Dict]:
        """One summary row per managed model (used by the CLI)."""
        rows: List[Dict] = []
        for name, managed in self._models.items():
            row: Dict = {"model": name, "layers": len(managed.protector.store)}
            row.update(managed.scheduler.describe())
            row["storage_kb"] = round(managed.protector.storage_overhead_kb(), 3)
            rows.append(row)
        return rows

    def _require_feasible(self, budget_s: float, models: Dict[str, ManagedModel]) -> None:
        """A tick budget a model's largest shard can never fit inside would
        silently disable that model's protection forever (every allocation
        would grant it nothing); fail fast instead."""
        needs = {name: managed.min_feasible_budget_s() for name, managed in models.items()}
        infeasible = {name: need for name, need in needs.items() if need > budget_s}
        if infeasible:
            detail = ", ".join(
                f"{name!r} needs >= {need * 1e3:.6g} ms" for name, need in infeasible.items()
            )
            raise ProtectionError(
                f"fleet budget of {budget_s * 1e3:.6g} ms can never cover a full "
                f"scan slice of: {detail}; raise the budget or register the "
                "model with more shards"
            )

    def _require_models(self) -> None:
        if not self._models:
            raise ProtectionError(
                "ProtectionService has no registered models; call register(name, model) first"
            )
