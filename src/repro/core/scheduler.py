"""Amortized scan scheduling: bounded-cost verification per forward pass.

A stop-the-world scan (:meth:`~repro.core.protector.ModelProtector.scan`)
verifies every group of every layer before each batch, which is the
opposite of the paper's point that checking must hide inside the inference
weight-streaming loop with near-zero overhead.  The
:class:`ScanScheduler` instead partitions the model's signature groups —
under the global-row numbering of
:class:`~repro.core.signature.FusedSignatures` — into ``num_shards``
shards and verifies a configurable slice of shards per pass, so per-pass
latency is bounded by the slice size while the whole model is still
verified within one full rotation.

Three policies decide which shards a pass scans:

* ``ROUND_ROBIN`` — cyclic order; every rotation takes exactly
  ``ceil(num_shards / shards_per_pass)`` passes.
* ``PRIORITY_EXPOSURE`` — longest-unscanned shard first (ties broken by
  how often a shard has been flagged before, then by index), so a shard
  that keeps catching flips is revisited sooner after service churn while
  the exposure bound of round-robin is preserved: an unscanned shard's
  exposure only grows, so it cannot starve.
* ``FULL`` — every shard every pass (degenerates to a full scan; useful
  as a baseline and for the highest-assurance deployments).

The detection-lag tradeoff is explicit: a flip landing in the worst-placed
shard is caught after at most one rotation (``worst_case_lag_passes``),
which `benchmarks/test_bench_scan_scheduler.py` measures against the
per-pass latency saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.core.detector import DetectionReport, report_from_fused_rows
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError
from repro.nn.module import Module


class ScanPolicy(str, Enum):
    """Shard-selection policy of the :class:`ScanScheduler`."""

    ROUND_ROBIN = "round_robin"
    PRIORITY_EXPOSURE = "priority_exposure"
    FULL = "full"


@dataclass
class ScanPassResult:
    """What one amortized pass scanned and found."""

    pass_index: int
    shard_indices: List[int]
    groups_checked: int
    report: DetectionReport
    rotation_complete: bool = False
    rotation_report: Optional[DetectionReport] = None

    @property
    def attack_detected(self) -> bool:
        return self.report.attack_detected


@dataclass
class ShardInfo:
    """Introspection row for one shard (used by reports and the CLI)."""

    index: int
    num_groups: int
    exposure_passes: int
    times_scanned: int
    times_flagged: int


class ScanScheduler:
    """Verifies a bounded slice of a model's signature groups per pass.

    The scheduler is pure detection: it never mutates the model.  Callers
    that want the paper's detect-then-recover behaviour feed the per-pass
    :class:`~repro.core.detector.DetectionReport` to
    :func:`~repro.core.recovery.recover_model` (as
    :class:`~repro.core.runtime.ProtectedInference` and
    :class:`~repro.core.service.ProtectionService` do).

    Invariant: the union of the per-pass reports over one complete rotation
    equals a full :meth:`~repro.core.detector.RadarDetector.scan` of the
    same (unchanged) weights; ``rotation_report`` hands that union out
    whenever a rotation completes.
    """

    def __init__(
        self,
        store: SignatureStore,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
    ) -> None:
        if num_shards < 1:
            raise ProtectionError(f"num_shards must be >= 1, got {num_shards}")
        if shards_per_pass < 1:
            raise ProtectionError(f"shards_per_pass must be >= 1, got {shards_per_pass}")
        self.store = store
        self.policy = ScanPolicy(policy)
        self.fused = store.fused()
        self.num_shards = min(num_shards, self.fused.total_groups)
        self.shards_per_pass = min(shards_per_pass, self.num_shards)
        self._shards: List[np.ndarray] = [
            rows.astype(np.int64)
            for rows in np.array_split(np.arange(self.fused.total_groups), self.num_shards)
        ]
        self._exposure = np.zeros(self.num_shards, dtype=np.int64)
        self._times_scanned = np.zeros(self.num_shards, dtype=np.int64)
        self._times_flagged = np.zeros(self.num_shards, dtype=np.int64)
        self._cursor = 0
        self._pass_index = 0
        self._rotation_pending = set(range(self.num_shards))
        self._rotation_rows: List[np.ndarray] = []

    # -- planning ---------------------------------------------------------------
    @property
    def total_groups(self) -> int:
        return self.fused.total_groups

    @property
    def worst_case_lag_passes(self) -> int:
        """Passes until any flip is guaranteed scanned (one full rotation)."""
        if self.policy is ScanPolicy.FULL:
            return 1
        return -(-self.num_shards // self.shards_per_pass)

    def plan(self) -> List[int]:
        """Shard indices the next :meth:`step` will scan (no state change)."""
        if self.policy is ScanPolicy.FULL:
            return list(range(self.num_shards))
        if self.policy is ScanPolicy.ROUND_ROBIN:
            return [
                (self._cursor + offset) % self.num_shards
                for offset in range(self.shards_per_pass)
            ]
        # PRIORITY_EXPOSURE: most-exposed first, flag history then index as
        # tie-breaks (lexsort orders by its last key first).
        order = np.lexsort(
            (np.arange(self.num_shards), -self._times_flagged, -self._exposure)
        )
        return [int(index) for index in order[: self.shards_per_pass]]

    def shard_rows(self, shard_index: int) -> np.ndarray:
        """Global group rows belonging to one shard."""
        if not 0 <= shard_index < self.num_shards:
            raise ProtectionError(f"shard_index {shard_index} out of range ({self.num_shards})")
        return self._shards[shard_index].copy()

    # -- scanning ---------------------------------------------------------------
    def step(self, model: Module) -> ScanPassResult:
        """Verify the next slice of shards against the golden signatures."""
        shard_indices = self.plan()
        rows = np.concatenate([self._shards[index] for index in shard_indices])
        flagged_rows = self.fused.mismatched_rows(model, rows)

        self._pass_index += 1
        self._exposure += 1
        for index in shard_indices:
            self._exposure[index] = 0
            self._times_scanned[index] += 1
            # Shards are contiguous row ranges, so a range test attributes flags.
            low, high = self._shards[index][0], self._shards[index][-1]
            if np.any((flagged_rows >= low) & (flagged_rows <= high)):
                self._times_flagged[index] += 1
        if self.policy is ScanPolicy.ROUND_ROBIN:
            self._cursor = (self._cursor + self.shards_per_pass) % self.num_shards

        report = report_from_fused_rows(self.fused, flagged_rows)
        self._rotation_rows.append(flagged_rows)
        self._rotation_pending -= set(shard_indices)
        rotation_complete = not self._rotation_pending
        rotation_report = None
        if rotation_complete:
            rotation_report = report_from_fused_rows(
                self.fused, np.concatenate(self._rotation_rows)
            )
            self._rotation_pending = set(range(self.num_shards))
            self._rotation_rows = []
        return ScanPassResult(
            pass_index=self._pass_index,
            shard_indices=shard_indices,
            groups_checked=int(rows.size),
            report=report,
            rotation_complete=rotation_complete,
            rotation_report=rotation_report,
        )

    def run_rotation(self, model: Module) -> DetectionReport:
        """Step until the current rotation completes; return its union report."""
        for _ in range(self.worst_case_lag_passes * 2):
            result = self.step(model)
            if result.rotation_complete:
                return result.rotation_report
        raise ProtectionError("Rotation did not complete; scheduler state is inconsistent")

    # -- introspection -----------------------------------------------------------
    @property
    def passes(self) -> int:
        return self._pass_index

    @property
    def max_exposure_passes(self) -> int:
        """Largest number of passes any shard has currently gone unscanned."""
        return int(self._exposure.max())

    def shard_info(self) -> List[ShardInfo]:
        return [
            ShardInfo(
                index=index,
                num_groups=int(self._shards[index].size),
                exposure_passes=int(self._exposure[index]),
                times_scanned=int(self._times_scanned[index]),
                times_flagged=int(self._times_flagged[index]),
            )
            for index in range(self.num_shards)
        ]

    def describe(self) -> Dict[str, int]:
        """Summary row used by the CLI and the service registry."""
        return {
            "groups": self.total_groups,
            "shards": self.num_shards,
            "shards_per_pass": self.shards_per_pass,
            "policy": self.policy.value,
            "worst_case_lag_passes": self.worst_case_lag_passes,
            "passes": self.passes,
        }
