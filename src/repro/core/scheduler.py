"""Amortized scan scheduling: bounded-cost verification per forward pass.

A stop-the-world scan (:meth:`~repro.core.protector.ModelProtector.scan`)
verifies every group of every layer before each batch, which is the
opposite of the paper's point that checking must hide inside the inference
weight-streaming loop with near-zero overhead.  The
:class:`ScanScheduler` instead partitions the model's signature groups —
under the global-row numbering of
:class:`~repro.core.signature.FusedSignatures` — into ``num_shards``
shards and verifies a configurable slice of shards per pass, so per-pass
latency is bounded by the slice size while the whole model is still
verified within one full rotation.

The scheduler splits responsibilities across two collaborators:

* **Planning** — a pluggable :class:`~repro.core.planner.VerificationPlanner`
  orders the shards each pass (see :class:`ScanPolicy` for the built-in
  policies); the scheduler truncates that order to the affordable slice.
* **Pricing** — an optional :class:`~repro.core.cost.ScanCostModel` converts
  "g groups" into seconds, which lets the slice be chosen from a *latency
  budget* instead of a fixed shard count: :meth:`ScanScheduler.from_budget`
  sizes the shards so every pass is priced within the budget, and
  :meth:`step` accepts a per-call budget override (how the
  :class:`~repro.core.service.ProtectionService` spreads one fleet-wide
  budget across models).

Three built-in policies decide which shards a pass scans:

* ``ROUND_ROBIN`` — cyclic order; every rotation takes exactly
  ``ceil(num_shards / shards_per_pass)`` passes.
* ``PRIORITY_EXPOSURE`` — longest-unscanned shard first, with a sub-integer
  flip-rate bias that revisits shards that keep catching flips sooner while
  provably preserving the rotation bound (see
  :class:`~repro.core.planner.PriorityExposurePlanner`).
* ``FULL`` — every shard every pass (degenerates to a full scan; useful
  as a baseline and for the highest-assurance deployments).
* ``JITTERED`` — seeded-random epoch permutations that deny a
  schedule-aware attacker the deterministic rotation while still covering
  every shard each epoch (see
  :class:`~repro.core.planner.JitteredPlanner`; its bound is two rotations,
  folded into ``worst_case_lag_passes`` via ``rotation_lag_multiplier``).

The detection-lag tradeoff is explicit: a flip landing in the worst-placed
shard is caught after at most one rotation (``worst_case_lag_passes``),
which `benchmarks/test_bench_scan_scheduler.py` measures against the
per-pass latency saving, and ``results/table4_amortized.json`` re-prices
Table IV under.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.cost import AnalyticScanCostModel, ScanCostModel, plan_rotation
from repro.core.detector import DetectionReport, report_from_fused_rows
from repro.core.planner import (
    FullScanPlanner,
    JitteredPlanner,
    PriorityExposurePlanner,
    RoundRobinPlanner,
    ShardView,
    VerificationPlanner,
)
from repro.core.signature import SignatureStore
from repro.errors import ProtectionError
from repro.nn.module import Module


class ScanPolicy(str, Enum):
    """Shard-selection policy of the :class:`ScanScheduler`."""

    ROUND_ROBIN = "round_robin"
    PRIORITY_EXPOSURE = "priority_exposure"
    FULL = "full"
    JITTERED = "jittered"


def planner_for_policy(policy: ScanPolicy) -> VerificationPlanner:
    """The default :class:`VerificationPlanner` implementing one policy."""
    policy = ScanPolicy(policy)
    if policy is ScanPolicy.FULL:
        return FullScanPlanner()
    if policy is ScanPolicy.PRIORITY_EXPOSURE:
        return PriorityExposurePlanner()
    if policy is ScanPolicy.JITTERED:
        return JitteredPlanner()
    return RoundRobinPlanner()


@dataclass(slots=True)
class ScanPassResult:
    """What one amortized pass scanned and found.

    ``slots=True``: one of these is built per model per pass on both the
    sequential and engine paths; skipping the ``__dict__`` allocation is
    a measurable share of a budgeted pass's fixed cost.
    """

    pass_index: int
    shard_indices: List[int]
    groups_checked: int
    report: DetectionReport
    rotation_complete: bool = False
    rotation_report: Optional[DetectionReport] = None
    #: Latency budget the pass was planned under (``None`` = structural slice).
    budget_s: Optional[float] = None
    #: Priced cost of the slice under the scheduler's cost model, when it has one.
    planned_cost_s: Optional[float] = None
    #: Wall-clock seconds the verification actually took (what the pass
    #: *spent*, as opposed to ``planned_cost_s`` — what the cost model
    #: predicted).  For engine-batched passes this is the model's share of
    #: its batch's elapsed time.
    measured_s: Optional[float] = None

    @property
    def attack_detected(self) -> bool:
        return self.report.attack_detected

    @property
    def within_budget(self) -> bool:
        """Whether the priced slice fit its budget (vacuously true without one)."""
        if self.budget_s is None or self.planned_cost_s is None:
            return True
        return self.planned_cost_s <= self.budget_s


class SliceDescriptor(NamedTuple):
    """A planned slice as plain data: shard indices plus their row ranges.

    The serializable form of :meth:`ScanScheduler.slice_rows` — what the
    fleet engine ships to scan worker processes instead of materialized row
    arrays.  Shards are contiguous ``arange`` blocks by construction
    (``np.array_split`` of ``arange``), so a slice is exactly one
    ``(start, stop)`` range per planned shard, in plan order; expanding the
    ranges back (:meth:`rows`) reproduces ``slice_rows`` bit for bit.
    Everything here is built-in ints, so the descriptor pickles tiny and
    round-trips through JSON unchanged.
    """

    shard_indices: Tuple[int, ...]
    row_ranges: Tuple[Tuple[int, int], ...]

    @property
    def num_rows(self) -> int:
        return sum(stop - start for start, stop in self.row_ranges)

    def rows(self) -> np.ndarray:
        """Materialize the global row array (identical to ``slice_rows``)."""
        if not self.row_ranges:
            return np.empty(0, dtype=np.int64)
        if len(self.row_ranges) == 1:
            start, stop = self.row_ranges[0]
            return np.arange(start, stop, dtype=np.int64)
        return np.concatenate(
            [np.arange(start, stop, dtype=np.int64) for start, stop in self.row_ranges]
        )


@dataclass
class ShardInfo:
    """Introspection row for one shard (used by reports and the CLI)."""

    index: int
    num_groups: int
    exposure_passes: int
    times_scanned: int
    times_flagged: int


class ScanScheduler:
    """Verifies a bounded slice of a model's signature groups per pass.

    The scheduler is pure detection: it never mutates the model.  Callers
    that want the paper's detect-then-recover behaviour feed the per-pass
    :class:`~repro.core.detector.DetectionReport` to
    :func:`~repro.core.recovery.recover_model` (as
    :class:`~repro.core.runtime.ProtectedInference` and
    :class:`~repro.core.service.ProtectionService` do).

    Invariant: the union of the per-pass reports over one complete rotation
    equals a full :meth:`~repro.core.detector.RadarDetector.scan` of the
    same (unchanged) weights; ``rotation_report`` hands that union out
    whenever a rotation completes.
    """

    def __init__(
        self,
        store: SignatureStore,
        num_shards: int = 8,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        shards_per_pass: int = 1,
        planner: Optional[VerificationPlanner] = None,
        budget_s: Optional[float] = None,
        cost_model: Optional[ScanCostModel] = None,
    ) -> None:
        if num_shards < 1:
            raise ProtectionError(f"num_shards must be >= 1, got {num_shards}")
        if shards_per_pass < 1:
            raise ProtectionError(f"shards_per_pass must be >= 1, got {shards_per_pass}")
        if shards_per_pass > num_shards:
            raise ProtectionError(
                f"shards_per_pass must be within [1, num_shards]; "
                f"got shards_per_pass={shards_per_pass} with num_shards={num_shards}"
            )
        if budget_s is not None and not budget_s > 0:
            raise ProtectionError(f"budget_s must be positive, got {budget_s}")
        self.store = store
        self.policy = ScanPolicy(policy)
        self._planner = planner if planner is not None else planner_for_policy(self.policy)
        self.fused = store.fused()
        # Data-dependent clamping (distinct from argument validation above):
        # a store can expose fewer groups than the requested shard count.
        self.num_shards = min(num_shards, self.fused.total_groups)
        self.shards_per_pass = min(shards_per_pass, self.num_shards)
        self.cost_model = cost_model
        self.budget_s = budget_s
        self._shards: List[np.ndarray] = [
            rows.astype(np.int64)
            for rows in np.array_split(np.arange(self.fused.total_groups), self.num_shards)
        ]
        # Plain-int mirrors of each shard's size and row range: planning,
        # pricing and flag attribution consult these once per model per
        # tick, where NumPy scalar extraction is pure dispatch overhead.
        self._shard_sizes: List[int] = [int(shard.size) for shard in self._shards]
        self._shard_bounds: List[Tuple[int, int]] = [
            (int(shard[0]), int(shard[-1])) if shard.size else (0, -1)
            for shard in self._shards
        ]
        if budget_s is not None:
            largest = max(shard.size for shard in self._shards)
            cost = self._require_cost_model().pass_cost_s(int(largest))
            if cost > budget_s:
                raise ProtectionError(
                    f"budget of {budget_s * 1e3:.6g} ms cannot cover the largest shard "
                    f"({largest} groups, priced {cost * 1e3:.6g} ms); raise the budget, "
                    "increase num_shards, or use ScanScheduler.from_budget"
                )
        # Exposure is stored lazily: a shard's effective backlog is
        # ``_exposure[i] + _exposure_base``.  Every pass bumps the scalar
        # base once instead of incrementing the whole array (a NumPy
        # dispatch per model per tick on the fleet path); scanning a shard
        # writes ``-base`` so its effective exposure returns to zero.
        self._exposure = np.zeros(self.num_shards, dtype=np.int64)
        self._exposure_base = 0
        self._times_scanned = np.zeros(self.num_shards, dtype=np.int64)
        self._times_flagged = np.zeros(self.num_shards, dtype=np.int64)
        # Scalar mirrors of ``_exposure.sum()`` / ``_times_flagged.sum()``,
        # kept in lock-step by apply_scan: fleet urgency ranking reads both
        # once per model per tick, and a NumPy reduction per read is pure
        # dispatch overhead next to two int adds.
        self._exposure_sum = 0
        self._flagged_sum = 0
        self._pass_index = 0
        self._rotation_pending = set(range(self.num_shards))
        self._rotation_rows: List[np.ndarray] = []
        # Shard views only change when a pass commits; planning, pricing and
        # fleet urgency ranking may all consult them several times per tick,
        # so they are cached between apply_scan calls.  State-blind planners
        # (``planner.uses_shard_state == False``) get a static tuple built
        # once — their order() never reads the mutable fields.
        self._shard_views_cache: Optional[List[ShardView]] = None
        self._static_views: List[ShardView] = [
            ShardView(
                index=index,
                num_groups=int(self._shards[index].size),
                exposure_passes=0,
                times_scanned=0,
                times_flagged=0,
            )
            for index in range(self.num_shards)
        ]

    @classmethod
    def from_budget(
        cls,
        store: SignatureStore,
        budget_s: float,
        cost_model: Optional[ScanCostModel] = None,
        policy: ScanPolicy = ScanPolicy.ROUND_ROBIN,
        planner: Optional[VerificationPlanner] = None,
    ) -> "ScanScheduler":
        """Size the shard rotation from a per-pass latency budget.

        The shard count is derived with :func:`~repro.core.cost.plan_rotation`
        so that the analytic cost of every pass stays within ``budget_s``
        (raising :class:`~repro.errors.ProtectionError` when the budget cannot
        cover even one group).  ``cost_model`` defaults to the
        :class:`~repro.core.cost.AnalyticScanCostModel` priced from the
        store's :class:`~repro.core.config.RadarConfig`.
        """
        model = cost_model or AnalyticScanCostModel.from_radar_config(store.config)
        plan = plan_rotation(store.fused().total_groups, budget_s, model)
        return cls(
            store,
            num_shards=plan.num_shards,
            policy=policy,
            shards_per_pass=1,
            planner=planner,
            budget_s=budget_s,
            cost_model=model,
        )

    # -- planning ---------------------------------------------------------------
    @property
    def total_groups(self) -> int:
        return self.fused.total_groups

    @property
    def largest_shard_groups(self) -> int:
        """Groups in the largest shard — what a one-shard pass can cost."""
        return int(max(shard.size for shard in self._shards))

    @property
    def planner(self) -> VerificationPlanner:
        return self._planner

    @property
    def worst_case_lag_passes(self) -> int:
        """Passes until any flip is guaranteed scanned.

        One full rotation for cyclic planners; planners that randomize the
        order inside rotation-aligned epochs declare a
        ``rotation_lag_multiplier`` (2 for
        :class:`~repro.core.planner.JitteredPlanner` — a shard scanned early
        in one epoch may land late in the next), which scales the bound.

        A budget narrows the slice even for the FULL policy, so its lag bound
        only collapses to one pass when every shard actually fits the budget.
        """
        rotation = -(-self.num_shards // self._effective_slice(self.budget_s))
        return rotation * getattr(self._planner, "rotation_lag_multiplier", 1)

    def _slots(self) -> int:
        return self.num_shards if self._planner.scan_everything else self.shards_per_pass

    def _effective_slice(self, budget_s: Optional[float]) -> int:
        """Shards one pass can afford: the policy's slot count, narrowed by budget."""
        slots = self._slots()
        if budget_s is None:
            return slots
        largest = max(shard.size for shard in self._shards)
        affordable = self._require_cost_model().groups_within(budget_s) // max(largest, 1)
        return max(1, min(slots, int(affordable)))

    def _require_cost_model(self) -> ScanCostModel:
        if self.cost_model is None:
            self.cost_model = AnalyticScanCostModel.from_radar_config(self.store.config)
        return self.cost_model

    def _shard_views(self) -> List[ShardView]:
        if self._shard_views_cache is None:
            self._shard_views_cache = [
                ShardView(
                    index=index,
                    num_groups=int(self._shards[index].size),
                    exposure_passes=int(self._exposure[index]) + self._exposure_base,
                    times_scanned=int(self._times_scanned[index]),
                    times_flagged=int(self._times_flagged[index]),
                )
                for index in range(self.num_shards)
            ]
        return self._shard_views_cache

    def plan(self, budget_s: Optional[float] = None) -> List[int]:
        """Shard indices the next :meth:`step` would scan (no state change).

        ``budget_s`` previews the slice under a per-pass budget override;
        without one the scheduler's own budget (if any) applies.
        """
        views = (
            self._shard_views()
            if self._planner.uses_shard_state
            else self._static_views
        )
        order = self._planner.order(views)
        budget = budget_s if budget_s is not None else self.budget_s
        if self._planner.scan_everything and budget is None:
            return order
        selection = order[: self._slots()]
        if budget is None:
            return selection
        cost_model = self._require_cost_model()
        affordable: List[int] = []
        groups = 0
        for index in selection:
            candidate = groups + self._shard_sizes[index]
            if cost_model.pass_cost_s(candidate) > budget:
                break
            affordable.append(index)
            groups = candidate
        return affordable

    def planned_slice_cost_s(self, budget_s: Optional[float] = None) -> float:
        """Priced cost of the slice the next :meth:`step` would scan.

        Uses the scheduler's cost model (instantiating the analytic default
        if none was given); the :class:`~repro.core.service.ProtectionService`
        uses this to let models claim exact slice costs out of a fleet budget.
        """
        return self.slice_cost_s(self.plan(budget_s=budget_s))

    def slice_cost_s(self, shard_indices: List[int]) -> float:
        """Priced cost of an already-planned slice (no re-planning).

        ``planned_slice_cost_s`` = :meth:`plan` + this; the fleet engine
        plans each model's slice once per tick and prices, executes and
        commits that same plan.
        """
        sizes = self._shard_sizes
        groups = sum(sizes[index] for index in shard_indices)
        return self._require_cost_model().pass_cost_s(groups)

    def shard_rows(self, shard_index: int) -> np.ndarray:
        """Global group rows belonging to one shard."""
        if not 0 <= shard_index < self.num_shards:
            raise ProtectionError(f"shard_index {shard_index} out of range ({self.num_shards})")
        return self._shards[shard_index].copy()

    def slice_rows(self, shard_indices: List[int]) -> np.ndarray:
        """Concatenated global rows of a planned slice, in scan order.

        Single-shard slices (the steady state of a budgeted rotation)
        return the shard array itself rather than a copy — callers treat
        planned rows as read-only, and the stable identity lets the fleet
        engine's batched verifier recognize repeated rotation positions
        without re-comparing row contents every tick.
        """
        if not shard_indices:
            return np.empty(0, dtype=np.int64)
        if len(shard_indices) == 1:
            return self._shards[shard_indices[0]]
        return np.concatenate([self._shards[index] for index in shard_indices])

    def slice_descriptor(self, shard_indices: List[int]) -> SliceDescriptor:
        """The plain-data form of a planned slice (see :class:`SliceDescriptor`).

        Shards hold contiguous ascending rows by construction, so each
        planned shard contributes one ``(start, stop)`` range; a shard left
        empty by the data-dependent clamp contributes nothing.
        """
        ranges: List[Tuple[int, int]] = []
        indices: List[int] = []
        for index in shard_indices:
            if not 0 <= index < self.num_shards:
                raise ProtectionError(
                    f"shard_index {index} out of range ({self.num_shards})"
                )
            indices.append(int(index))
            shard = self._shards[index]
            if shard.size:
                ranges.append((int(shard[0]), int(shard[-1]) + 1))
        return SliceDescriptor(
            shard_indices=tuple(indices), row_ranges=tuple(ranges)
        )

    # -- scanning ---------------------------------------------------------------
    def step(
        self,
        model: Module,
        budget_s: Optional[float] = None,
        reference: bool = False,
    ) -> ScanPassResult:
        """Verify the next slice of shards against the golden signatures.

        ``budget_s`` overrides the scheduler's own budget for this pass only —
        the :class:`~repro.core.service.ProtectionService` uses it to hand each
        model its allocated share of a fleet-wide budget.  A pass whose budget
        cannot afford even one shard scans nothing (``shard_indices == []``);
        its exposure counters still advance, so an underfunded model's claim
        on the next allocation grows instead of silently overrunning.

        ``step`` is plan → verify → :meth:`apply_scan`; the middle stage runs
        on the zero-copy scan kernel of
        :class:`~repro.core.signature.FusedSignatures` (``reference=True``
        pins it to the retained PR-3 per-layer path — the bit-exactness
        oracle the kernel benchmark measures against).  Callers that verify
        a planned slice *externally* (the batched cross-model pass of
        :class:`~repro.core.fleet.VerificationEngine`) run the same pipeline
        with their own middle stage.
        """
        budget = budget_s if budget_s is not None else self.budget_s
        shard_indices = self.plan(budget_s=budget)
        rows = self.slice_rows(shard_indices)
        started = time.perf_counter()
        flagged_rows = self.fused.mismatched_rows(model, rows, reference=reference)
        elapsed = time.perf_counter() - started
        return self.apply_scan(
            shard_indices, flagged_rows, measured_s=elapsed, budget_s=budget
        )

    def apply_scan(
        self,
        shard_indices: List[int],
        flagged_rows: np.ndarray,
        measured_s: Optional[float] = None,
        budget_s: Optional[float] = None,
    ) -> ScanPassResult:
        """Commit one verified slice: bookkeeping, rotation tracking, report.

        ``shard_indices`` must be the slice :meth:`plan` produced for this
        pass and ``flagged_rows`` the mismatching global rows found within
        it (however they were computed — per model via
        ``fused.mismatched_rows`` as :meth:`step` does, or stacked across
        models by :func:`~repro.core.signature.batched_mismatched_rows`).
        ``measured_s`` is fed to the cost model's ``observe`` hook when it
        has one, so measured pricing calibrates no matter who executed the
        verification.
        """
        sizes = self._shard_sizes
        groups_checked = sum(sizes[index] for index in shard_indices)
        planned_cost = None
        if self.cost_model is not None:
            planned_cost = self.cost_model.pass_cost_s(groups_checked)
            if measured_s is not None:
                observe = getattr(self.cost_model, "observe", None)
                if observe is not None:
                    observe(groups_checked, measured_s)

        self._pass_index += 1
        self._exposure_base += 1
        base = self._exposure_base
        self._exposure_sum += self.num_shards
        self._shard_views_cache = None
        clean = flagged_rows.size == 0
        flagged_counts: Dict[int, int] = {}
        for index in shard_indices:
            self._exposure_sum -= int(self._exposure[index]) + base
            self._exposure[index] = -base
            self._times_scanned[index] += 1
            if clean:
                flagged_counts[index] = 0
                continue
            # Shards are contiguous row ranges, so a range test attributes flags.
            low, high = self._shard_bounds[index]
            count = int(np.count_nonzero((flagged_rows >= low) & (flagged_rows <= high)))
            flagged_counts[index] = count
            if count:
                self._times_flagged[index] += 1
                self._flagged_sum += 1
        self._planner.committed(shard_indices, flagged_counts)

        report = report_from_fused_rows(self.fused, flagged_rows)
        self._rotation_rows.append(flagged_rows)
        self._rotation_pending.difference_update(shard_indices)
        rotation_complete = not self._rotation_pending
        rotation_report = None
        if rotation_complete:
            rotation_report = report_from_fused_rows(
                self.fused, np.concatenate(self._rotation_rows)
            )
            self._rotation_pending = set(range(self.num_shards))
            self._rotation_rows = []
        return ScanPassResult(
            pass_index=self._pass_index,
            shard_indices=list(shard_indices),
            groups_checked=groups_checked,
            report=report,
            rotation_complete=rotation_complete,
            rotation_report=rotation_report,
            budget_s=budget_s,
            planned_cost_s=planned_cost,
            measured_s=measured_s,
        )

    def run_rotation(self, model: Module) -> DetectionReport:
        """Step until the current rotation completes; return its union report."""
        for _ in range(self.worst_case_lag_passes * 2):
            result = self.step(model)
            if result.rotation_complete:
                return result.rotation_report
        raise ProtectionError("Rotation did not complete; scheduler state is inconsistent")

    # -- introspection -----------------------------------------------------------
    @property
    def passes(self) -> int:
        return self._pass_index

    @property
    def max_exposure_passes(self) -> int:
        """Largest number of passes any shard has currently gone unscanned."""
        return int(self._exposure.max()) + self._exposure_base

    @property
    def mean_exposure_passes(self) -> float:
        """Mean shard exposure — the backlog term of fleet urgency ranking."""
        return self._exposure_sum / self.num_shards

    @property
    def total_flagged_passes(self) -> int:
        """Sum over shards of how many passes flagged each (flip history)."""
        return self._flagged_sum

    def shard_info(self) -> List[ShardInfo]:
        return [
            ShardInfo(
                index=view.index,
                num_groups=view.num_groups,
                exposure_passes=view.exposure_passes,
                times_scanned=view.times_scanned,
                times_flagged=view.times_flagged,
            )
            for view in self._shard_views()
        ]

    # -- persistence -------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable rotation state (counters, cursor-free).

        Together with the planner's own ``state_dict`` this is everything a
        restart needs to resume the rotation mid-flight: exposure backlog
        (which drives fleet urgency), per-shard scan/flag history, and the
        set of shards the current rotation still owes.  The flagged rows
        accumulated toward the rotation-union report are included so a
        resumed rotation's ``rotation_report`` stays the true union.
        """
        return {
            "num_shards": int(self.num_shards),
            "pass_index": int(self._pass_index),
            "exposure": [int(value) + self._exposure_base for value in self._exposure],
            "times_scanned": [int(value) for value in self._times_scanned],
            "times_flagged": [int(value) for value in self._times_flagged],
            "rotation_pending": sorted(int(index) for index in self._rotation_pending),
            "rotation_rows": [
                [int(row) for row in rows] for rows in self._rotation_rows
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The snapshot must come from a scheduler with the same shard count —
        counters indexed by shard are meaningless across a re-sharding.
        """
        saved_shards = int(state["num_shards"])
        if saved_shards != self.num_shards:
            raise ProtectionError(
                f"persisted scheduler state has {saved_shards} shards, "
                f"this scheduler has {self.num_shards}; refusing to restore "
                "counters across a re-sharding"
            )
        self._pass_index = int(state["pass_index"])
        self._exposure = np.asarray(state["exposure"], dtype=np.int64)
        self._exposure_base = 0
        self._times_scanned = np.asarray(state["times_scanned"], dtype=np.int64)
        self._times_flagged = np.asarray(state["times_flagged"], dtype=np.int64)
        self._exposure_sum = int(self._exposure.sum())  # base is 0 right after a restore
        self._flagged_sum = int(self._times_flagged.sum())
        for name in ("_exposure", "_times_scanned", "_times_flagged"):
            if getattr(self, name).shape != (self.num_shards,):
                raise ProtectionError(
                    f"persisted scheduler state field {name[1:]!r} has wrong length"
                )
        pending = {int(index) for index in state["rotation_pending"]}
        if not pending <= set(range(self.num_shards)):
            raise ProtectionError("persisted rotation_pending indices out of range")
        # An empty pending set only ever exists transiently inside apply_scan;
        # a persisted empty set means the snapshot was taken at rotation
        # completion, where the next rotation owes everything again.
        self._rotation_pending = pending if pending else set(range(self.num_shards))
        self._rotation_rows = [
            np.asarray(rows, dtype=np.int64) for rows in state["rotation_rows"]
        ]
        self._shard_views_cache = None

    def describe(self) -> Dict[str, object]:
        """Summary row used by the CLI and the service registry."""
        row: Dict[str, object] = {
            "groups": self.total_groups,
            "shards": self.num_shards,
            "shards_per_pass": self.shards_per_pass,
            "policy": self.policy.value,
            "worst_case_lag_passes": self.worst_case_lag_passes,
            "passes": self.passes,
            # Whether every layer's gather runs on the block-slice fast
            # path (fuse-time rotated-arange detection); shard slices of an
            # unstructured plane fall back to the general gather.
            "structured": bool(self.fused.structured),
        }
        if self.budget_s is not None:
            row["budget_ms"] = round(self.budget_s * 1e3, 6)
            largest = max(shard.size for shard in self._shards)
            row["per_pass_cost_ms"] = round(
                self._require_cost_model().pass_cost_s(int(largest)) * 1e3, 6
            )
        return row
