"""Grouping and interleaving of a layer's weights for checksum computation.

Two layouts are supported (Fig. 3 of the paper):

* **contiguous** (``use_interleave=False``): group ``j`` holds weights
  ``[j*G, (j+1)*G)`` — the natural memory order.
* **t-interleave** (``use_interleave=True``): with ``N_p`` groups, weight
  ``i`` belongs to group ``((i mod N_p) - (i // N_p) * t) mod N_p``.  With
  ``t = 0`` this is the basic interleave of Fig. 3(a) (group = ``i mod
  N_p``, i.e. members are ``N_p`` locations apart); the paper uses an
  additional offset ``t = 3`` so consecutive rows are rotated against each
  other, which is Fig. 3(b).

Layers whose weight count is not divisible by ``G`` are padded with
virtual zero weights (the paper does the same); padded slots never map
back to real weights during recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ProtectionError

PAD_INDEX = -1


@dataclass
class GroupLayout:
    """The mapping between original weight indices and checksum groups."""

    num_weights: int
    group_size: int
    use_interleave: bool
    interleave_offset: int = 3

    def __post_init__(self) -> None:
        if self.num_weights <= 0:
            raise ProtectionError(f"num_weights must be positive, got {self.num_weights}")
        if self.group_size < 2:
            raise ProtectionError(f"group_size must be >= 2, got {self.group_size}")
        self.num_groups = int(np.ceil(self.num_weights / self.group_size))
        self.padded_size = self.num_groups * self.group_size
        self._group_of_index = self._build_group_assignment()
        self._groups = self._build_groups()

    # -- construction --------------------------------------------------------
    def _build_group_assignment(self) -> np.ndarray:
        indices = np.arange(self.padded_size, dtype=np.int64)
        if not self.use_interleave or self.num_groups == 1:
            return indices // self.group_size
        rows = indices // self.num_groups
        columns = indices % self.num_groups
        return (columns - rows * self.interleave_offset) % self.num_groups

    def _build_groups(self) -> np.ndarray:
        """(num_groups, group_size) matrix of original indices (PAD_INDEX for padding).

        Every block of ``num_groups`` consecutive indices assigns exactly one
        member to each group (the t-interleave is a per-row rotation), so a
        stable sort by group id yields exactly ``group_size`` members per
        group and the reshape below is well-defined.
        """
        order = np.argsort(self._group_of_index, kind="stable")
        groups = order.reshape(self.num_groups, self.group_size)
        return np.where(groups < self.num_weights, groups, PAD_INDEX)

    # -- queries --------------------------------------------------------------
    @property
    def groups(self) -> np.ndarray:
        """Copy of the (num_groups, group_size) index matrix."""
        return self._groups.copy()

    def group_of(self, flat_index: int) -> int:
        """Group id of an original weight index."""
        if not 0 <= flat_index < self.num_weights:
            raise ProtectionError(
                f"flat_index {flat_index} out of range for layer of {self.num_weights} weights"
            )
        return int(self._group_of_index[flat_index])

    def members_of(self, group_index: int) -> np.ndarray:
        """Original weight indices belonging to ``group_index`` (padding removed)."""
        if not 0 <= group_index < self.num_groups:
            raise ProtectionError(
                f"group_index {group_index} out of range ({self.num_groups} groups)"
            )
        members = self._groups[group_index]
        return members[members != PAD_INDEX].copy()

    def gather(self, flat_values: np.ndarray, dtype=np.int64) -> np.ndarray:
        """Arrange ``flat_values`` into the (num_groups, group_size) layout.

        Padded slots are filled with zeros, which is neutral for the
        addition checksum.  ``dtype`` selects the gathered dtype; the
        default promotes to int64 (the historical behaviour), while the
        narrow-accumulation checksum path gathers int8 weights as int8 and
        defers widening to the accumulator.
        """
        flat_values = np.asarray(flat_values)
        if flat_values.shape != (self.num_weights,):
            raise ProtectionError(
                f"Expected a flat array of {self.num_weights} values, got shape {flat_values.shape}"
            )
        gathered = np.zeros((self.num_groups, self.group_size), dtype=dtype)
        valid = self._groups != PAD_INDEX
        gathered[valid] = flat_values[self._groups[valid]]
        return gathered

    def gather_rows(
        self, flat_values: np.ndarray, group_indices: np.ndarray, dtype=np.int64
    ) -> np.ndarray:
        """:meth:`gather` restricted to a subset of group rows.

        This is the amortized-scan fast path: the cost is proportional to
        ``len(group_indices) * group_size`` rather than to the layer size,
        so verifying a slice of a layer's groups does not pay for the rest.
        """
        flat_values = np.asarray(flat_values)
        if flat_values.shape != (self.num_weights,):
            raise ProtectionError(
                f"Expected a flat array of {self.num_weights} values, got shape {flat_values.shape}"
            )
        group_indices = np.atleast_1d(np.asarray(group_indices, dtype=np.int64))
        if group_indices.size and not (
            0 <= group_indices.min() and group_indices.max() < self.num_groups
        ):
            raise ProtectionError(
                f"group indices out of range ({self.num_groups} groups)"
            )
        rows = self._groups[group_indices]
        valid = rows != PAD_INDEX
        gathered = np.zeros(rows.shape, dtype=dtype)
        gathered[valid] = flat_values[rows[valid]]
        return gathered

    def scatter_mask(self, group_indices: np.ndarray) -> np.ndarray:
        """Boolean mask over original indices covering the given groups.

        Used by the recovery step: all weights whose group is flagged are
        zeroed, and the mask already excludes padding slots.
        """
        group_indices = np.atleast_1d(np.asarray(group_indices, dtype=np.int64))
        mask = np.zeros(self.num_weights, dtype=bool)
        for group_index in group_indices:
            mask[self.members_of(int(group_index))] = True
        return mask

    def slot_shifts(self) -> Optional[np.ndarray]:
        """Per-slot rotations of the rotated-arange gather structure, if any.

        For a t-interleaved layout, group ``g``'s member at slot ``r`` sits
        at original index ``r * N + (g + s_r) % N`` with ``N = num_groups``
        and ``s_r = (r * t) % N`` — i.e. slot ``r``'s gather column over all
        groups is the contiguous block ``[r * N, (r + 1) * N)`` rotated left
        by ``s_r``.  That is what lets the scan kernel replace the fancy
        gather with block slice copies (:class:`~repro.core.signature.PlaneStructure`).

        Returns the ``(group_size,)`` int64 shift vector, or ``None`` for
        layouts the detector deliberately does not claim and the kernel
        serves through the general gather instead: contiguous layouts (slot
        columns are stride-``G`` sequences, not rotations), single-group
        layouts (one group per slot row — nothing a block copy would
        batch), and zero-rotation interleaves (``t % N == 0``: every shift
        collapses to 0 — the detector is deliberately conservative and only
        claims proper rotations, so degenerate edge cases ride the
        always-correct general gather instead of a special branch).
        Offsets *not coprime*
        with ``N`` are still proper rotations (``s_r`` just cycles through
        ``gcd(t, N)``-step values) and are claimed — real layer sizes are
        routinely divisible by the paper's ``t = 3``.
        """
        if not self.use_interleave or self.num_groups == 1:
            return None
        if self.interleave_offset % self.num_groups == 0:
            return None
        return (
            np.arange(self.group_size, dtype=np.int64) * self.interleave_offset
        ) % self.num_groups

    def describe(self) -> Dict[str, int]:
        """Small summary used by reports and tests."""
        return {
            "num_weights": self.num_weights,
            "group_size": self.group_size,
            "num_groups": self.num_groups,
            "padded_size": self.padded_size,
            "interleaved": int(self.use_interleave),
        }
