"""Verification planners: the pluggable shard-selection layer of the scheduler.

PR 1's :class:`~repro.core.scheduler.ScanScheduler` hard-wired its three
policies into one ``plan()`` method.  This module pulls selection out into a
:class:`VerificationPlanner` object the scheduler delegates to, so policies
can carry their own state (a round-robin cursor, per-shard flip-rate
estimates) and new ones can be plugged in without touching scan bookkeeping.

The planner contract is deliberately small:

* :meth:`VerificationPlanner.order` — given a read-only
  :class:`ShardView` per shard, return **all** shard indices in
  scan-preference order (most urgent first) without mutating any state.  The
  scheduler truncates that order to the slice the pass can afford
  (``shards_per_pass``, further narrowed by a latency budget when one is set).
* :meth:`VerificationPlanner.committed` — feedback after the scheduler
  actually scanned a slice: which shards ran and how many flagged groups each
  produced.  This is where the cursor advances and flip-rate EWMAs update.

Keeping ``order`` pure means :meth:`ScanScheduler.plan` stays side-effect
free, and the budget truncation composes with every policy.

Starvation bound
----------------
:class:`PriorityExposurePlanner` ranks shards by ``exposure + flip_bias``
where ``flip_bias`` is **strictly less than 1**.  Exposure counts are
integers, so a shard can only be overtaken by shards whose exposure is at
least as large — the bias reorders *ties* (revisiting flip-prone shards
sooner) but can never invert a strict exposure ordering.  The scheduler's
round-robin rotation bound (``worst_case_lag_passes``) therefore survives
flip-rate tuning; ``tests/test_planner.py`` property-tests this under
injected flips.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, NamedTuple, Sequence

from repro.errors import ProtectionError


class ShardView(NamedTuple):
    """Read-only state of one shard, as planners see it.

    A ``NamedTuple`` rather than a dataclass: the scheduler materializes one
    view per shard per committed pass, and on a large fleet that creation
    cost is on the engine's hot tick path.
    """

    index: int
    num_groups: int
    exposure_passes: int
    times_scanned: int
    times_flagged: int


class VerificationPlanner(ABC):
    """Orders shards for scanning; sees feedback after every committed pass."""

    #: Planners that want every shard scanned every pass (the stop-the-world
    #: baseline) set this; the scheduler then ignores ``shards_per_pass``.
    scan_everything: bool = False

    #: Planners whose :meth:`order` reads per-pass shard state (exposure,
    #: flip counts) keep this True.  State-blind planners (cyclic orders use
    #: only the shard *count*) set it False, letting the scheduler hand
    #: :meth:`order` a static view tuple instead of refreshing every view
    #: each pass — a measurable saving on the fleet engine's tick path.
    uses_shard_state: bool = True

    @abstractmethod
    def order(self, shards: Sequence[ShardView]) -> List[int]:
        """All shard indices, most scan-worthy first.  Must not mutate state."""

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        """The scheduler scanned ``shard_indices``; ``flagged_counts`` maps
        each scanned shard to the number of flagged groups it produced."""

    def reset(self) -> None:
        """Clear rotation-cursor state ahead of a rebuilt rotation.

        Called when a scheduler is rebuilt over a re-signed store (the
        engine's REPROTECTING step) while the planner object is carried
        over.  Only *positional* state should clear; *learned* statistics
        (e.g. per-shard flip rates) survive on purpose — the shard that was
        just attacked stays a priority in the fresh rotation.
        """

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the planner's mutable state.

        What :mod:`repro.telemetry.store` persists across service restarts:
        positional cursors *and* learned statistics, so a restored planner
        resumes exactly where the saved one stopped (same next slice, same
        flip-rate priorities).  Stateless planners return ``{}``.
        """
        return {}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same type)."""


class RoundRobinPlanner(VerificationPlanner):
    """Cyclic order; a rotation takes exactly ``ceil(n / slice)`` passes."""

    uses_shard_state = False  # order depends only on the shard count

    def __init__(self) -> None:
        self._cursor = 0

    def order(self, shards: Sequence[ShardView]) -> List[int]:
        count = len(shards)
        return [(self._cursor + offset) % count for offset in range(count)]

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        self._cursor += len(shard_indices)
        # Normalization is deferred to order(), which knows the shard count;
        # keep the raw count bounded anyway so it cannot grow without limit.
        if shard_indices:
            self._cursor %= 10**9

    def reset(self) -> None:
        self._cursor = 0

    def state_dict(self) -> Dict[str, object]:
        return {"cursor": int(self._cursor)}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self._cursor = int(state.get("cursor", 0))


class FullScanPlanner(RoundRobinPlanner):
    """Every shard, every pass — degenerates to a stop-the-world scan.

    Inherits the round-robin cursor so that when a latency budget truncates
    the pass to an affordable prefix, consecutive passes still rotate through
    all shards instead of rescanning the same prefix forever.  Without a
    budget the cursor is irrelevant: every pass selects every shard.
    """

    scan_everything = True


class PriorityExposurePlanner(VerificationPlanner):
    """Longest-unscanned first, with flip-rate-tuned tie-breaking.

    Priority of a shard is ``exposure + flip_bias`` where ``flip_bias`` is
    ``flip_bias_weight × rate / (1 + rate)`` and ``rate`` is an EWMA of "did
    this shard flag anything when scanned".  ``flip_bias_weight < 1`` keeps
    the bias sub-integer, so it only reorders exposure ties (see the module
    docstring for why that preserves the starvation bound).  Remaining ties
    fall back to lifetime flag counts, then the shard index — matching the
    PR 1 behaviour when no flips have been observed.
    """

    def __init__(self, flip_bias_weight: float = 0.99, ewma_alpha: float = 0.5) -> None:
        if not 0 <= flip_bias_weight < 1:
            raise ProtectionError(
                f"flip_bias_weight must be in [0, 1) to preserve the "
                f"starvation bound, got {flip_bias_weight}"
            )
        if not 0 < ewma_alpha <= 1:
            raise ProtectionError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.flip_bias_weight = float(flip_bias_weight)
        self.ewma_alpha = float(ewma_alpha)
        self._flip_rate: dict = {}

    def flip_rate(self, shard_index: int) -> float:
        """Current EWMA flip rate of one shard (0 until it flags something)."""
        return self._flip_rate.get(shard_index, 0.0)

    def _bias(self, shard_index: int) -> float:
        rate = self.flip_rate(shard_index)
        return self.flip_bias_weight * rate / (1.0 + rate)

    def order(self, shards: Sequence[ShardView]) -> List[int]:
        return [
            shard.index
            for shard in sorted(
                shards,
                key=lambda shard: (
                    -(shard.exposure_passes + self._bias(shard.index)),
                    -shard.times_flagged,
                    shard.index,
                ),
            )
        ]

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        for index in shard_indices:
            observed = 1.0 if flagged_counts.get(index, 0) > 0 else 0.0
            rate = self._flip_rate.get(index, 0.0)
            self._flip_rate[index] = rate + self.ewma_alpha * (observed - rate)

    def state_dict(self) -> Dict[str, object]:
        # JSON object keys are strings; load_state_dict converts them back.
        return {
            "flip_rate": {
                str(index): float(rate) for index, rate in self._flip_rate.items()
            }
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        rates = state.get("flip_rate", {})
        self._flip_rate = {
            int(index): float(rate) for index, rate in dict(rates).items()
        }
