"""Verification planners: the pluggable shard-selection layer of the scheduler.

PR 1's :class:`~repro.core.scheduler.ScanScheduler` hard-wired its three
policies into one ``plan()`` method.  This module pulls selection out into a
:class:`VerificationPlanner` object the scheduler delegates to, so policies
can carry their own state (a round-robin cursor, per-shard flip-rate
estimates) and new ones can be plugged in without touching scan bookkeeping.

The planner contract is deliberately small:

* :meth:`VerificationPlanner.order` — given a read-only
  :class:`ShardView` per shard, return **all** shard indices in
  scan-preference order (most urgent first) without mutating any state.  The
  scheduler truncates that order to the slice the pass can afford
  (``shards_per_pass``, further narrowed by a latency budget when one is set).
* :meth:`VerificationPlanner.committed` — feedback after the scheduler
  actually scanned a slice: which shards ran and how many flagged groups each
  produced.  This is where the cursor advances and flip-rate EWMAs update.

Keeping ``order`` pure means :meth:`ScanScheduler.plan` stays side-effect
free, and the budget truncation composes with every policy.

Starvation bound
----------------
:class:`PriorityExposurePlanner` ranks shards by ``exposure + flip_bias``
where ``flip_bias`` is **strictly less than 1**.  Exposure counts are
integers, so a shard can only be overtaken by shards whose exposure is at
least as large — the bias reorders *ties* (revisiting flip-prone shards
sooner) but can never invert a strict exposure ordering.  The scheduler's
round-robin rotation bound (``worst_case_lag_passes``) therefore survives
flip-rate tuning; ``tests/test_planner.py`` property-tests this under
injected flips.

Predictability vs. the bound
----------------------------
A *strictly sliding* starvation bound of ``B = ceil(n / slice)`` passes
forces a cyclic schedule: once every shard's next scan has a hard deadline
exactly ``B`` passes after its last one, the only order satisfying all
deadlines is a repeat of the previous rotation.  A schedule-aware attacker
(:mod:`repro.attacks.adaptive`) exploits exactly that determinism — it
observes which shards each pass scanned and fires into the shard whose
next scan is furthest away, turning the *bound* into the *guaranteed*
detection latency.  :class:`JitteredPlanner` trades the sliding bound for
a rotation-aligned one: every *epoch* of ``B`` passes covers all shards in
a fresh seeded random permutation, so consecutive scans of one shard are
at most ``2B - 1`` passes apart (late in one epoch, early in the next is
the best an attacker can rely on; the worst case is early then late).
Planners declare that relaxation via :attr:`rotation_lag_multiplier`,
which the scheduler folds into ``worst_case_lag_passes``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence

import numpy as np

from repro.errors import ProtectionError


class ShardView(NamedTuple):
    """Read-only state of one shard, as planners see it.

    A ``NamedTuple`` rather than a dataclass: the scheduler materializes one
    view per shard per committed pass, and on a large fleet that creation
    cost is on the engine's hot tick path.
    """

    index: int
    num_groups: int
    exposure_passes: int
    times_scanned: int
    times_flagged: int


class VerificationPlanner(ABC):
    """Orders shards for scanning; sees feedback after every committed pass."""

    #: Planners that want every shard scanned every pass (the stop-the-world
    #: baseline) set this; the scheduler then ignores ``shards_per_pass``.
    scan_everything: bool = False

    #: Planners whose :meth:`order` reads per-pass shard state (exposure,
    #: flip counts) keep this True.  State-blind planners (cyclic orders use
    #: only the shard *count*) set it False, letting the scheduler hand
    #: :meth:`order` a static view tuple instead of refreshing every view
    #: each pass — a measurable saving on the fleet engine's tick path.
    uses_shard_state: bool = True

    #: Factor the scheduler multiplies into ``worst_case_lag_passes``.
    #: Cyclic planners guarantee a scan within one rotation (1); planners
    #: that randomize the order inside rotation-aligned epochs
    #: (:class:`JitteredPlanner`) guarantee it within two (2) — the price
    #: of being unpredictable to a schedule-aware attacker.
    rotation_lag_multiplier: int = 1

    @abstractmethod
    def order(self, shards: Sequence[ShardView]) -> List[int]:
        """All shard indices, most scan-worthy first.  Must not mutate state.

        The returned indices are built-in ``int``s — plans flow into
        serializable slice descriptors (pickled to scan worker processes,
        persisted as JSON), so no NumPy scalars may leak out of a planner.
        """

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        """The scheduler scanned ``shard_indices``; ``flagged_counts`` maps
        each scanned shard to the number of flagged groups it produced."""

    def reset(self) -> None:
        """Clear rotation-cursor state ahead of a rebuilt rotation.

        Called when a scheduler is rebuilt over a re-signed store (the
        engine's REPROTECTING step) while the planner object is carried
        over.  Only *positional* state should clear; *learned* statistics
        (e.g. per-shard flip rates) survive on purpose — the shard that was
        just attacked stays a priority in the fresh rotation.
        """

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the planner's mutable state.

        What :mod:`repro.telemetry.store` persists across service restarts:
        positional cursors *and* learned statistics, so a restored planner
        resumes exactly where the saved one stopped (same next slice, same
        flip-rate priorities).  Stateless planners return ``{}``.
        """
        return {}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same type)."""


class RoundRobinPlanner(VerificationPlanner):
    """Cyclic order; a rotation takes exactly ``ceil(n / slice)`` passes."""

    uses_shard_state = False  # order depends only on the shard count

    def __init__(self) -> None:
        self._cursor = 0

    def order(self, shards: Sequence[ShardView]) -> List[int]:
        count = len(shards)
        return [(self._cursor + offset) % count for offset in range(count)]

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        self._cursor += len(shard_indices)
        # Normalization is deferred to order(), which knows the shard count;
        # keep the raw count bounded anyway so it cannot grow without limit.
        if shard_indices:
            self._cursor %= 10**9

    def reset(self) -> None:
        self._cursor = 0

    def state_dict(self) -> Dict[str, object]:
        return {"cursor": int(self._cursor)}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self._cursor = int(state.get("cursor", 0))


class FullScanPlanner(RoundRobinPlanner):
    """Every shard, every pass — degenerates to a stop-the-world scan.

    Inherits the round-robin cursor so that when a latency budget truncates
    the pass to an affordable prefix, consecutive passes still rotate through
    all shards instead of rescanning the same prefix forever.  Without a
    budget the cursor is irrelevant: every pass selects every shard.
    """

    scan_everything = True


class PriorityExposurePlanner(VerificationPlanner):
    """Longest-unscanned first, with flip-rate-tuned tie-breaking.

    Priority of a shard is ``exposure + flip_bias`` where ``flip_bias`` is
    ``flip_bias_weight × rate / (1 + rate)`` and ``rate`` is an EWMA of "did
    this shard flag anything when scanned".  ``flip_bias_weight < 1`` keeps
    the bias sub-integer, so it only reorders exposure ties (see the module
    docstring for why that preserves the starvation bound).  Remaining ties
    fall back to lifetime flag counts, then the shard index — matching the
    PR 1 behaviour when no flips have been observed.
    """

    def __init__(self, flip_bias_weight: float = 0.99, ewma_alpha: float = 0.5) -> None:
        if not 0 <= flip_bias_weight < 1:
            raise ProtectionError(
                f"flip_bias_weight must be in [0, 1) to preserve the "
                f"starvation bound, got {flip_bias_weight}"
            )
        if not 0 < ewma_alpha <= 1:
            raise ProtectionError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.flip_bias_weight = float(flip_bias_weight)
        self.ewma_alpha = float(ewma_alpha)
        self._flip_rate: dict = {}

    def flip_rate(self, shard_index: int) -> float:
        """Current EWMA flip rate of one shard (0 until it flags something)."""
        return self._flip_rate.get(shard_index, 0.0)

    def _bias(self, shard_index: int) -> float:
        rate = self.flip_rate(shard_index)
        return self.flip_bias_weight * rate / (1.0 + rate)

    def order(self, shards: Sequence[ShardView]) -> List[int]:
        return [
            shard.index
            for shard in sorted(
                shards,
                key=lambda shard: (
                    -(shard.exposure_passes + self._bias(shard.index)),
                    -shard.times_flagged,
                    shard.index,
                ),
            )
        ]

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        for index in shard_indices:
            # Callers may hand numpy index arrays; normalize to built-in int
            # keys so the EWMA dict stays plain data (JSON/pickle friendly).
            index = int(index)
            observed = 1.0 if flagged_counts.get(index, 0) > 0 else 0.0
            rate = self._flip_rate.get(index, 0.0)
            self._flip_rate[index] = rate + self.ewma_alpha * (observed - rate)

    def state_dict(self) -> Dict[str, object]:
        # JSON object keys are strings; load_state_dict converts them back.
        return {
            "flip_rate": {
                str(index): float(rate) for index, rate in self._flip_rate.items()
            }
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        rates = state.get("flip_rate", {})
        self._flip_rate = {
            int(index): float(rate) for index, rate in dict(rates).items()
        }


class JitteredPlanner(VerificationPlanner):
    """Seeded-random epoch permutations: unpredictable yet starvation-free.

    Defense counter-move to the schedule-aware adversaries of
    :mod:`repro.attacks.adaptive`.  The deterministic rotations of
    :class:`RoundRobinPlanner` (and, under no flips, of
    :class:`PriorityExposurePlanner`) let an attacker who merely *observes*
    which shards each pass scanned predict the next scan of every shard and
    fire into the maximum-staleness window — achieving the worst-case
    detection latency on every salvo.

    This planner instead partitions time into **epochs** of one rotation
    each: at the start of every epoch it draws a fresh permutation of all
    shards from ``default_rng([seed, epoch])`` and serves the epoch from it.
    Every epoch covers every shard (the rotation-aligned starvation bound),
    but *where* in the next epoch a given shard lands is uniform — an
    attacker targeting the just-scanned shard now waits a uniformly random
    fraction of a rotation, the same expectation a blind random attacker
    gets.  The worst-case gap between two scans of one shard is ``2B - 1``
    passes (scanned first in one epoch, last in the next), declared via
    ``rotation_lag_multiplier = 2``.

    Epoch-boundary passes may straddle two epochs; the straddling slice is
    drawn from the *next* epoch's permutation (skipping shards still owed by
    the current one), and the shards it consumes are excluded from the next
    epoch via ``carryover`` — both epochs still cover every shard.

    Like :class:`PriorityExposurePlanner` the planner keeps a per-shard
    flip-rate EWMA; ``hot_bias > 0`` turns the uniform draw into an
    Efraimidis–Spirakis weighted shuffle that *front-loads* flip-prone
    shards within each epoch.  The bias reshapes each epoch's permutation
    but never removes a shard from it, so the bound is unaffected.  The
    EWMA (and the RNG seed) survive :meth:`reset`; only the epoch position
    clears — and the epoch counter *advances*, so a rebuilt rotation never
    replays an already-observed permutation.

    :meth:`tune` closes the loop with
    :meth:`repro.telemetry.monitor.FleetTelemetry.tune_jitter`: observed
    detection-latency pressure (p99 ticks against the declared bound) moves
    ``hot_bias``, biasing future epochs toward the shards attacks actually
    land in.
    """

    uses_shard_state = False  # epoch permutations ignore per-pass exposure
    rotation_lag_multiplier = 2

    #: Ceiling :meth:`tune` may push ``hot_bias`` to.
    MAX_HOT_BIAS = 4.0

    def __init__(self, seed: int = 0, hot_bias: float = 0.0, ewma_alpha: float = 0.5) -> None:
        if hot_bias < 0:
            raise ProtectionError(f"hot_bias must be >= 0, got {hot_bias}")
        if not 0 < ewma_alpha <= 1:
            raise ProtectionError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.seed = int(seed)
        self.hot_bias = float(hot_bias)
        self.ewma_alpha = float(ewma_alpha)
        self._flip_rate: Dict[int, float] = {}
        self._epoch = 0
        #: Shards the current epoch still owes (``None`` = epoch not started;
        #: materialized lazily by :meth:`order`, which is the first caller
        #: that knows the shard count).
        self._remaining: Optional[List[int]] = None
        #: Shards a boundary-straddling pass already consumed out of the
        #: *next* epoch; excluded when that epoch materializes.
        self._carryover: List[int] = []

    # -- randomized ordering ----------------------------------------------------
    def flip_rate(self, shard_index: int) -> float:
        """Current EWMA flip rate of one shard (0 until it flags something)."""
        return self._flip_rate.get(shard_index, 0.0)

    def _keys(self, epoch: int, count: int) -> np.ndarray:
        """Efraimidis–Spirakis shuffle keys for one epoch (descending order).

        With all weights 1 (no flips observed, or ``hot_bias == 0``) the
        keys are i.i.d. uniform draws and sorting them yields a uniform
        permutation; a weight ``w > 1`` pushes a shard's key toward 1,
        front-loading it in expectation without ever excluding anyone.
        """
        draws = np.random.default_rng([self.seed, epoch]).random(count)
        if self.hot_bias > 0 and self._flip_rate:
            weights = np.ones(count)
            for index, rate in self._flip_rate.items():
                if 0 <= index < count:
                    weights[index] += self.hot_bias * rate / (1.0 + rate)
            return draws ** (1.0 / weights)
        return draws

    def _epoch_order(self, epoch: int, count: int) -> List[int]:
        keys = self._keys(epoch, count)
        return sorted(range(count), key=lambda index: (-keys[index], index))

    def order(self, shards: Sequence[ShardView]) -> List[int]:
        count = len(shards)
        if self._remaining is None:
            # Lazy epoch materialization — idempotent (repeated calls see the
            # same remaining list until a commit), so planning stays replayable.
            self._remaining = [
                index
                for index in self._epoch_order(self._epoch, count)
                if index not in self._carryover
            ]
            self._carryover = []
        remaining = [index for index in self._remaining if index < count]
        owed = set(remaining)
        preview = [
            index
            for index in self._epoch_order(self._epoch + 1, count)
            if index not in owed
        ]
        return remaining + preview

    def committed(
        self, shard_indices: Sequence[int], flagged_counts: Mapping[int, int]
    ) -> None:
        for index in shard_indices:
            index = int(index)  # keep the EWMA dict keyed by built-in ints
            observed = 1.0 if flagged_counts.get(index, 0) > 0 else 0.0
            rate = self._flip_rate.get(index, 0.0)
            self._flip_rate[index] = rate + self.ewma_alpha * (observed - rate)
        if not shard_indices:
            return
        if self._remaining is None:
            # Commit before any order() (never the scheduler's sequence, but
            # reachable through direct planner use): charge the fresh epoch.
            self._carryover.extend(int(index) for index in shard_indices)
            return
        overflow: List[int] = []
        for index in shard_indices:
            if index in self._remaining:
                self._remaining.remove(index)
            else:
                overflow.append(int(index))
        if not self._remaining:
            self._epoch += 1
            self._remaining = None
            self._carryover = overflow

    def reset(self) -> None:
        # Positional state only — flip rates and the seed survive.  The
        # epoch counter advances past every permutation the old rotation may
        # have revealed, so a reprotected model resumes unpredictable.
        self._epoch += 1
        self._remaining = None
        self._carryover = []

    # -- telemetry-driven tuning -------------------------------------------------
    def tune(
        self,
        observed_p99_ticks: Optional[float] = None,
        bound_ticks: Optional[float] = None,
        hot_bias: Optional[float] = None,
    ) -> float:
        """Adjust ``hot_bias`` and return the new value.

        Either set ``hot_bias`` directly, or pass telemetry feedback: when
        the observed p99 detection latency consumes more than half of the
        declared bound the bias steps toward :data:`MAX_HOT_BIAS` (future
        epochs front-load the flip-prone shards); when pressure relaxes the
        bias decays back toward uniform.  Pure arithmetic — deterministic
        for deterministic inputs.
        """
        if hot_bias is not None:
            if hot_bias < 0:
                raise ProtectionError(f"hot_bias must be >= 0, got {hot_bias}")
            self.hot_bias = min(float(hot_bias), self.MAX_HOT_BIAS)
            return self.hot_bias
        if (
            observed_p99_ticks is None
            or bound_ticks is None
            or not bound_ticks > 0
            or not np.isfinite(observed_p99_ticks)
        ):
            return self.hot_bias
        pressure = float(observed_p99_ticks) / float(bound_ticks)
        target = self.MAX_HOT_BIAS * min(1.0, max(0.0, (pressure - 0.5) * 2.0))
        self.hot_bias += 0.5 * (target - self.hot_bias)
        return self.hot_bias

    # -- persistence -------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "seed": int(self.seed),
            "epoch": int(self._epoch),
            "remaining": (
                None
                if self._remaining is None
                else [int(index) for index in self._remaining]
            ),
            "carryover": [int(index) for index in self._carryover],
            "hot_bias": float(self.hot_bias),
            "flip_rate": {
                str(index): float(rate) for index, rate in self._flip_rate.items()
            },
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.seed = int(state.get("seed", self.seed))
        self._epoch = int(state.get("epoch", 0))
        remaining = state.get("remaining")
        self._remaining = (
            None if remaining is None else [int(index) for index in remaining]
        )
        self._carryover = [int(index) for index in state.get("carryover", [])]
        self.hot_bias = float(state.get("hot_bias", 0.0))
        rates = state.get("flip_rate", {})
        self._flip_rate = {
            int(index): float(rate) for index, rate in dict(rates).items()
        }
