"""Configuration of the RADAR scheme."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RadarConfig:
    """Parameters of the detection / recovery scheme.

    Attributes
    ----------
    group_size:
        ``G`` — number of weights per checksum group.  The paper sweeps
        4–64 for ResNet-20 and 64–1024 for ResNet-18 and recommends
        ``G = 8`` and ``G = 512`` respectively.
    use_interleave:
        Whether a group gathers weights that are originally far apart
        (Section IV.B.2).  Improves multi-flip detection and defeats the
        paired-flip attacker.
    interleave_offset:
        The ``t`` of the t-interleave in Fig. 3(b); the paper uses 3.
    use_masking:
        Whether each weight is conditionally negated according to the
        per-layer secret key before summation (Section IV.B.1).
    key_bits:
        Length of the per-layer secret key (``N_k``); the paper uses 16.
    signature_bits:
        2 for the standard scheme (``S_A``, ``S_B``); 3 adds the
        MSB-1-protecting bit discussed in Section VIII.
    secret_seed:
        Seed from which the per-layer keys and (conceptually) the secret
        interleave parameters are derived.  In a deployment this lives in
        secure on-chip storage.
    """

    group_size: int = 512
    use_interleave: bool = True
    interleave_offset: int = 3
    use_masking: bool = True
    key_bits: int = 16
    signature_bits: int = 2
    secret_seed: int = 2021

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ConfigurationError(f"group_size must be >= 2, got {self.group_size}")
        if self.signature_bits not in (1, 2, 3):
            raise ConfigurationError(
                f"signature_bits must be 1, 2 or 3, got {self.signature_bits}"
            )
        if self.key_bits < 1:
            raise ConfigurationError(f"key_bits must be >= 1, got {self.key_bits}")
        if self.interleave_offset < 0:
            raise ConfigurationError(
                f"interleave_offset must be non-negative, got {self.interleave_offset}"
            )

    def with_group_size(self, group_size: int) -> "RadarConfig":
        """Copy of this config with a different group size (used by sweeps)."""
        return RadarConfig(
            group_size=group_size,
            use_interleave=self.use_interleave,
            interleave_offset=self.interleave_offset,
            use_masking=self.use_masking,
            key_bits=self.key_bits,
            signature_bits=self.signature_bits,
            secret_seed=self.secret_seed,
        )
