"""Serialization helpers for model state dictionaries.

Model parameters are stored as flat ``{name: ndarray}`` mappings in NumPy
``.npz`` archives.  This is the on-disk format used by the model zoo cache
(:mod:`repro.models.zoo`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Save a ``{name: array}`` mapping to ``path`` as a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(value) for key, value in state.items()})


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``{name: array}`` mapping previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def state_dict_num_bytes(state: Dict[str, np.ndarray]) -> int:
    """Total number of bytes occupied by the arrays in ``state``."""
    return int(sum(np.asarray(value).nbytes for value in state.values()))
