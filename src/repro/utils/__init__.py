"""Shared utilities: seeded RNG management, logging, serialization."""

from repro.utils.rng import (
    derive_seed,
    new_rng,
    spawn_rngs,
    temporary_seed,
)
from repro.utils.serialization import (
    load_state_dict,
    save_state_dict,
    state_dict_num_bytes,
)
from repro.utils.logging import get_logger

__all__ = [
    "derive_seed",
    "new_rng",
    "spawn_rngs",
    "temporary_seed",
    "load_state_dict",
    "save_state_dict",
    "state_dict_num_bytes",
    "get_logger",
]
