"""Deterministic random-number-generator helpers.

Every stochastic component in this library (dataset synthesis, weight
initialization, attack sampling, secret-key generation) draws from a
``numpy.random.Generator`` that is derived from an explicit integer seed.
Nothing uses the global NumPy random state, so experiments are fully
reproducible from their configuration alone.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Iterator, List, Union

import numpy as np

SeedLike = Union[int, str, bytes, None]

_DEFAULT_SEED = 0x52414441  # "RADA" in ASCII, a nod to the paper title.


def derive_seed(*parts: SeedLike) -> int:
    """Derive a 63-bit integer seed from an arbitrary mix of parts.

    The derivation is a SHA-256 hash of the textual representation of each
    part, so the same inputs always produce the same seed, and distinct
    labels (e.g. ``("pbfa", layer_name, round_idx)``) produce independent
    streams.

    >>> derive_seed("pbfa", 3) == derive_seed("pbfa", 3)
    True
    >>> derive_seed("pbfa", 3) != derive_seed("pbfa", 4)
    True
    """
    hasher = hashlib.sha256()
    for part in parts:
        if part is None:
            token = b"\x00none"
        elif isinstance(part, bytes):
            token = part
        else:
            token = str(part).encode("utf-8")
        hasher.update(len(token).to_bytes(4, "little"))
        hasher.update(token)
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from ``seed``.

    ``None`` maps to the library default seed (still deterministic); any
    other value is passed through :func:`derive_seed` so strings and tuples
    of labels are acceptable.
    """
    if seed is None:
        resolved = _DEFAULT_SEED
    elif isinstance(seed, (int, np.integer)):
        resolved = int(seed)
    else:
        resolved = derive_seed(seed)
    return np.random.default_rng(resolved)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators derived from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [new_rng(derive_seed(seed, index)) for index in range(count)]


@contextlib.contextmanager
def temporary_seed(seed: int) -> Iterator[None]:
    """Temporarily seed the *global* NumPy RNG (legacy interop only).

    The library itself never relies on the global state; this context
    manager exists for user scripts that mix in third-party code which
    does.
    """
    state = np.random.get_state()
    np.random.seed(seed)
    try:
        yield
    finally:
        np.random.set_state(state)
