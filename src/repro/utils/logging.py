"""Minimal logging configuration shared by the library and the harnesses."""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    logging.basicConfig(level=level, format=_FORMAT)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    The first call configures the root logger; the level is controlled by
    the ``REPRO_LOG_LEVEL`` environment variable (default ``WARNING``).
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
