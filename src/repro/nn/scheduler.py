"""Learning-rate schedulers."""

from __future__ import annotations

import math
from typing import Sequence

from repro.nn.optim import Optimizer


class _Scheduler:
    """Base class: stores the optimizer and its initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class MultiStepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for milestone in self.milestones if epoch >= milestone)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(_Scheduler):
    """Cosine annealing from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.total_epochs = max(total_epochs, 1)
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
