"""Standard floating-point layers (Conv2d, Linear, BatchNorm2d, pooling, ...).

Quantized variants used by the RADAR experiments live in
:mod:`repro.quant.layers`; they subclass the layers defined here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.utils.rng import new_rng


class Conv2d(Module):
    """2-D convolution layer in NCHW layout (no bias by default, as in ResNet)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng if rng is not None else new_rng("conv2d-init")
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self._cache = None

    def effective_weight(self) -> np.ndarray:
        """Weight actually used by the forward pass.

        Overridden by the quantized subclass to return the dequantized
        (possibly attacked) integer weights.
        """
        return self.weight.data

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        weight = self.effective_weight()
        bias = self.bias.data if self.bias is not None else None
        output, self._cache = F.conv2d_forward(
            inputs, weight, bias, stride=self.stride, padding=self.padding
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on Conv2d")
        weight = self.effective_weight()
        grad_input, grad_weight, grad_bias = F.conv2d_backward(
            grad_output, weight, self._cache
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None and grad_bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else new_rng("linear-init")
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._cache = None

    def effective_weight(self) -> np.ndarray:
        """Weight used by the forward pass (see :meth:`Conv2d.effective_weight`)."""
        return self.weight.data

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        weight = self.effective_weight()
        bias = self.bias.data if self.bias is not None else None
        output, self._cache = F.linear_forward(inputs, weight, bias)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on Linear")
        weight = self.effective_weight()
        grad_input, grad_weight, grad_bias = F.linear_backward(
            grad_output, weight, self._cache
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None and grad_bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input


class BatchNorm2d(Module):
    """Per-channel batch normalization for NCHW tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))
        self._cache = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expected {self.num_features} channels, got {inputs.shape[1]}"
            )
        output, self._cache, new_mean, new_var = F.batchnorm_forward(
            inputs,
            self.weight.data,
            self.bias.data,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )
        if self.training:
            self.set_buffer("running_mean", new_mean)
            self.set_buffer("running_var", new_var)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on BatchNorm2d")
        grad_input, grad_gamma, grad_beta = F.batchnorm_backward(grad_output, self._cache)
        self.weight.accumulate_grad(grad_gamma)
        self.bias.accumulate_grad(grad_beta)
        return grad_input


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._cache = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.relu_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on ReLU")
        return F.relu_backward(grad_output, self._cache)


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.max_pool2d_forward(
            inputs, self.kernel_size, self.stride, self.padding
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on MaxPool2d")
        return F.max_pool2d_backward(grad_output, self._cache)


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.avg_pool2d_forward(
            inputs, self.kernel_size, self.stride, self.padding
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on AvgPool2d")
        return F.avg_pool2d_backward(grad_output, self._cache)


class GlobalAvgPool2d(Module):
    """Global average pooling ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._cache = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.global_avg_pool_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on GlobalAvgPool2d")
        return F.global_avg_pool_backward(grad_output, self._cache)


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on Flatten")
        return grad_output.reshape(self._input_shape)


class Identity(Module):
    """Pass-through layer (used for residual shortcuts without projection)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._layers)
        setattr(self, f"layer{index}", module)
        self._layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for layer in self._layers:
            output = layer(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return grad
