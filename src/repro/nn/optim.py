"""Optimizers (SGD with momentum / weight decay, Adam)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"Learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            first = self._first_moment.get(index)
            second = self._second_moment.get(index)
            if first is None:
                first = np.zeros_like(param.data)
                second = np.zeros_like(param.data)
            first = self.beta1 * first + (1 - self.beta1) * grad
            second = self.beta2 * second + (1 - self.beta2) * (grad * grad)
            self._first_moment[index] = first
            self._second_moment[index] = second
            corrected_first = first / bias1
            corrected_second = second / bias2
            param.data -= self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
