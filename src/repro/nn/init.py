"""Weight initialization schemes (He / Kaiming, Xavier, constants)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.tensor.dtypes import FLOAT_DTYPE


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in and fan-out for linear (2-D) and conv (4-D) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"Unsupported weight shape for fan computation: {shape}")


def kaiming_normal(
    shape: Tuple[int, ...], rng: np.random.Generator, nonlinearity: str = "relu"
) -> np.ndarray:
    """He-normal initialization (mode ``fan_in``)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, nonlinearity: str = "relu"
) -> np.ndarray:
    """He-uniform initialization (mode ``fan_in``)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero tensor."""
    return np.zeros(shape, dtype=FLOAT_DTYPE)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one tensor."""
    return np.ones(shape, dtype=FLOAT_DTYPE)
