"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F


class CrossEntropyLoss:
    """Mean cross-entropy over integer class targets.

    Usage mirrors the layer API: call the object to obtain the scalar loss,
    then call :meth:`backward` to obtain the gradient with respect to the
    logits.
    """

    def __init__(self) -> None:
        self._cache = None

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        loss, self._cache = F.cross_entropy_forward(logits, np.asarray(targets))
        return loss

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self(logits, targets)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward on CrossEntropyLoss")
        return F.cross_entropy_backward(self._cache)
