"""A small layer-graph neural-network framework on top of :mod:`repro.tensor`.

The framework intentionally mirrors a subset of the ``torch.nn`` API
(``Module``, ``Parameter``, ``state_dict`` / ``load_state_dict``,
``train`` / ``eval``) so the attack and defense code reads like the
original PyTorch reference implementations, while everything runs on
NumPy.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.scheduler import CosineAnnealingLR, MultiStepLR, StepLR
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
    "CrossEntropyLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "init",
]
