"""``Module`` and ``Parameter`` base classes.

A :class:`Module` owns named :class:`Parameter` objects and named child
modules.  The forward pass is explicit (``forward(x)``) and each module
implements ``backward(grad_output)`` that consumes the cache saved during
the last forward call and accumulates parameter gradients in
``Parameter.grad``.  This explicit-graph design (rather than a taped
autograd) keeps the framework small and the computation costs easy to
model for the timing simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.dtypes import FLOAT_DTYPE

from repro.errors import ShapeError


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Attributes
    ----------
    data:
        The parameter value (ndarray of ``repro.tensor.dtypes.FLOAT_DTYPE``).
    grad:
        Accumulated gradient of the loss w.r.t. ``data``; ``None`` until the
        first backward pass (or after :meth:`zero_grad`).
    requires_grad:
        When ``False`` the optimizers skip this parameter and modules do not
        accumulate its gradient.
    """

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=FLOAT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient buffer (creating it if needed)."""
        if not self.requires_grad:
            return
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"Gradient shape {grad.shape} does not match parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.astype(FLOAT_DTYPE, copy=True)
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, requires_grad={self.requires_grad})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute plumbing -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent tensor (e.g. running stats)."""
        self._buffers[name] = np.asarray(value, dtype=FLOAT_DTYPE)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"No buffer named {name!r} registered on {type(self).__name__}")
        self._buffers[name] = np.asarray(value, dtype=FLOAT_DTYPE)
        object.__setattr__(self, name, self._buffers[name])

    # -- traversal ----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    # -- mode ---------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradients ----------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- forward / backward -------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter and buffer names to arrays (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from a flat mapping."""
        own_params = dict(self.named_parameters())
        own_buffer_names = {name for name, _ in self.named_buffers()}
        missing = (set(own_params) | own_buffer_names) - set(state)
        unexpected = set(state) - (set(own_params) | own_buffer_names)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            if name in state:
                value = np.asarray(state[name], dtype=FLOAT_DTYPE)
                if value.shape != param.data.shape:
                    raise ShapeError(
                        f"Parameter {name!r}: cannot load shape {value.shape} into {param.data.shape}"
                    )
                param.data = value.copy()
        # Buffers live on (possibly nested) modules; walk and set them.
        for module_name, module in self.named_modules():
            for buffer_name in list(module._buffers):
                full_name = f"{module_name}.{buffer_name}" if module_name else buffer_name
                if full_name in state:
                    module.set_buffer(buffer_name, state[full_name])

    # -- introspection ------------------------------------------------------
    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(
            param.size
            for param in self.parameters()
            if (param.requires_grad or not trainable_only)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_repr = ", ".join(self._modules)
        return f"{type(self).__name__}({child_repr})"
