"""Baseline integrity-checking codes the paper compares against (Section VII.B).

* :mod:`repro.baselines.crc` — bit-accurate cyclic redundancy checks with
  arbitrary generator polynomials, including the Koopman polynomials the
  paper cites (CRC-7 / CRC-10 / CRC-13 for HD=3 at the relevant block
  lengths).
* :mod:`repro.baselines.hamming` — Hamming SEC-DED (single error correct,
  double error detect) codes over weight groups.
* :mod:`repro.baselines.parity` — plain per-group parity, the weakest and
  cheapest scheme.
* :mod:`repro.baselines.checksums` — the classic checksum families from the
  Maxino & Koopman study the paper cites (XOR, addition, one's complement,
  Fletcher, Adler), used by the ablation experiments.
* :mod:`repro.baselines.protectors` — drop-in protectors exposing the same
  ``protect`` / ``scan`` API as RADAR so the overhead and detection
  comparisons are apples-to-apples.
"""

from repro.baselines.crc import (
    CRC_POLYNOMIALS,
    CrcCode,
    crc_bits_for_group,
    crc_checksum,
)
from repro.baselines.checksums import (
    CHECKSUM_BITS,
    CHECKSUM_FAMILIES,
    addition_checksum,
    adler_checksum,
    checksum_by_name,
    fletcher_checksum,
    ones_complement_checksum,
    xor_checksum,
)
from repro.baselines.hamming import HammingSecDed, hamming_parity_bits
from repro.baselines.parity import parity_bits
from repro.baselines.protectors import (
    BaselineProtector,
    ChecksumProtector,
    CrcProtector,
    HammingProtector,
    ParityProtector,
    baseline_storage_kb,
)

__all__ = [
    "CrcCode",
    "CRC_POLYNOMIALS",
    "crc_checksum",
    "crc_bits_for_group",
    "CHECKSUM_FAMILIES",
    "CHECKSUM_BITS",
    "checksum_by_name",
    "xor_checksum",
    "addition_checksum",
    "ones_complement_checksum",
    "fletcher_checksum",
    "adler_checksum",
    "HammingSecDed",
    "hamming_parity_bits",
    "parity_bits",
    "BaselineProtector",
    "ChecksumProtector",
    "CrcProtector",
    "HammingProtector",
    "ParityProtector",
    "baseline_storage_kb",
]
