"""Baseline protectors with the same protect / scan API as RADAR.

Each protector partitions every quantized layer into contiguous groups of
``group_size`` weights (the natural memory layout — these codes do not use
RADAR's interleaving or masking), stores per-group check bits computed
from the clean weights, and at scan time recomputes them and flags
mismatching groups.  They produce the same
:class:`repro.core.detector.DetectionReport` as RADAR so every detection
and overhead experiment can swap schemes freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.crc import CrcCode
from repro.baselines.hamming import hamming_parity_bits
from repro.baselines.parity import parity_bits
from repro.core.detector import DetectionReport
from repro.core.interleave import GroupLayout
from repro.errors import ProtectionError
from repro.nn.module import Module
from repro.quant.bitops import int8_to_uint8
from repro.quant.layers import quantized_layers


@dataclass
class _LayerState:
    layout: GroupLayout
    golden: np.ndarray


class BaselineProtector:
    """Shared plumbing for the contiguous-group baseline codes."""

    #: check bits stored per group; set by subclasses (possibly in __init__).
    bits_per_group: int = 0
    name: str = "baseline"

    def __init__(self, group_size: int) -> None:
        if group_size < 2:
            raise ProtectionError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size
        self._layers: Dict[str, _LayerState] = {}

    # -- to be provided by subclasses -----------------------------------------
    def _check_values(self, byte_groups: np.ndarray) -> np.ndarray:
        """Per-group check values for a (num_groups, group_size) uint8 matrix."""
        raise NotImplementedError

    # -- shared API -------------------------------------------------------------
    def protect(self, model: Module) -> "BaselineProtector":
        layers = quantized_layers(model)
        if not layers:
            raise ProtectionError("Model has no quantized layers to protect")
        self._layers.clear()
        for name, layer in layers:
            if not layer.is_quantized:
                raise ProtectionError(f"Layer {name!r} must be quantized before protecting")
            layout = GroupLayout(
                num_weights=int(layer.qweight.size),
                group_size=self.group_size,
                use_interleave=False,
            )
            self._layers[name] = _LayerState(
                layout=layout, golden=self._layer_checks(layer.qweight, layout)
            )
        return self

    def _layer_checks(self, qweight: np.ndarray, layout: GroupLayout) -> np.ndarray:
        gathered = layout.gather(qweight.reshape(-1).astype(np.int64))
        byte_groups = int8_to_uint8(gathered.astype(np.int8))
        return self._check_values(byte_groups)

    def scan(self, model: Module) -> DetectionReport:
        if not self._layers:
            raise ProtectionError("protect(model) must be called before scan")
        layer_map = dict(quantized_layers(model))
        report = DetectionReport()
        for name, state in self._layers.items():
            if name not in layer_map:
                raise ProtectionError(f"Protected layer {name!r} missing from model")
            current = self._layer_checks(layer_map[name].qweight, state.layout)
            mismatches = np.nonzero(current != state.golden)[0]
            report.flagged_groups[name] = mismatches.astype(np.int64)
        return report

    def group_of(self, layer_name: str, flat_index: int) -> int:
        """Group index of a weight under this protector's contiguous layout."""
        if layer_name not in self._layers:
            raise ProtectionError(f"Layer {layer_name!r} is not protected")
        return self._layers[layer_name].layout.group_of(flat_index)

    # -- storage accounting -------------------------------------------------------
    def total_groups(self) -> int:
        return sum(state.layout.num_groups for state in self._layers.values())

    def storage_bits(self) -> int:
        return self.total_groups() * self.bits_per_group

    def storage_kilobytes(self) -> float:
        return self.storage_bits() / 8.0 / 1024.0


class CrcProtector(BaselineProtector):
    """CRC-n per contiguous group (the paper's main comparison, Table V)."""

    def __init__(self, group_size: int, num_bits: Optional[int] = None, msb_only: bool = False) -> None:
        super().__init__(group_size)
        self.msb_only = msb_only
        if num_bits is None:
            # HD=3 sizing over the protected payload: all 8 bits per weight,
            # or just the MSBs for the "protect MSBs only" variant of Table V.
            data_bits = group_size if msb_only else group_size * 8
            num_bits = self._width_for_bits(data_bits)
        self.code = CrcCode.standard(num_bits)
        self.bits_per_group = num_bits
        self.name = f"crc{num_bits}" + ("-msb" if msb_only else "")

    @staticmethod
    def _width_for_bits(data_bits: int) -> int:
        from repro.baselines.crc import CRC_POLYNOMIALS

        for width in sorted(CRC_POLYNOMIALS):
            if (1 << width) - width - 1 >= data_bits:
                return width
        raise ProtectionError(f"No standard CRC wide enough for {data_bits} data bits")

    def _check_values(self, byte_groups: np.ndarray) -> np.ndarray:
        if self.msb_only:
            msb_bits = (byte_groups >> 7) & 1
            byte_groups = np.packbits(msb_bits, axis=1)
        return self.code.checksum_groups(byte_groups)


class HammingProtector(BaselineProtector):
    """SEC-DED Hamming parity per contiguous group.

    The recomputed parity vector (including the overall parity bit) is
    compared against the stored one; any mismatch flags the group, which
    detects all single and double bit errors within a group.
    """

    def __init__(self, group_size: int) -> None:
        super().__init__(group_size)
        self.data_bits = group_size * 8
        self.bits_per_group = hamming_parity_bits(self.data_bits, extended=True)
        self.name = f"hamming-secded-{self.bits_per_group}"
        self._coverage = self._build_coverage()

    def _build_coverage(self) -> np.ndarray:
        """(data_bits, base_parity_bits) 0/1 matrix: which parity checks cover which data bit."""
        base_parity = self.bits_per_group - 1
        parity_positions = np.array([1 << i for i in range(base_parity)], dtype=np.int64)
        total = self.data_bits + base_parity
        positions = np.arange(1, total + 1, dtype=np.int64)
        is_parity = (positions & (positions - 1)) == 0
        data_positions = positions[~is_parity][: self.data_bits]
        return ((data_positions[:, None] & parity_positions[None, :]) != 0).astype(np.uint8)

    def _check_values(self, byte_groups: np.ndarray) -> np.ndarray:
        bits = np.unpackbits(byte_groups, axis=1, bitorder="little")
        parity = (bits.astype(np.int64) @ self._coverage.astype(np.int64)) % 2
        overall = bits.sum(axis=1, keepdims=True) % 2
        combined = np.concatenate([parity, overall], axis=1).astype(np.uint8)
        return _pack_rows(combined)


class ParityProtector(BaselineProtector):
    """One parity bit per contiguous group."""

    bits_per_group = 1

    def __init__(self, group_size: int) -> None:
        super().__init__(group_size)
        self.name = "parity"

    def _check_values(self, byte_groups: np.ndarray) -> np.ndarray:
        return parity_bits(byte_groups.view(np.int8))


class ChecksumProtector(BaselineProtector):
    """A classic checksum family (XOR / addition / Fletcher / Adler / one's complement).

    Wraps the functions of :mod:`repro.baselines.checksums` in the shared
    protect / scan API so the ablation experiments can compare RADAR's
    binarized masked addition checksum against the full-width families at
    their natural storage cost.
    """

    def __init__(self, group_size: int, family: str = "addition") -> None:
        super().__init__(group_size)
        from repro.baselines.checksums import CHECKSUM_BITS, checksum_by_name

        self._checksum = checksum_by_name(family)
        self.family = family.lower()
        self.bits_per_group = CHECKSUM_BITS[self.family]
        self.name = f"checksum-{self.family}"

    def _check_values(self, byte_groups: np.ndarray) -> np.ndarray:
        return self._checksum(byte_groups)


def _pack_rows(bit_rows: np.ndarray) -> np.ndarray:
    """Pack each row of a 0/1 matrix into a single integer (up to 64 bits)."""
    bit_rows = np.asarray(bit_rows, dtype=np.uint64)
    weights = np.uint64(1) << np.arange(bit_rows.shape[1], dtype=np.uint64)
    return (bit_rows * weights[None, :]).sum(axis=1)


def baseline_storage_kb(num_weights: int, group_size: int, bits_per_group: int) -> float:
    """Storage (KB) for ``bits_per_group`` check bits per group of ``group_size`` weights."""
    num_groups = int(np.ceil(num_weights / group_size))
    return num_groups * bits_per_group / 8.0 / 1024.0
