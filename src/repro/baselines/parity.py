"""Plain parity over weight groups (the cheapest possible integrity check).

A single parity bit over all bits of a group detects any odd number of bit
flips but is blind to every even number.  It is included as the lower
bound of the storage/detection trade-off space explored in the
discussion.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quant.bitops import int8_to_uint8


def parity_bits(groups: np.ndarray) -> np.ndarray:
    """Parity bit of each row of a ``(num_groups, group_size)`` int8 matrix."""
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ConfigurationError(f"Expected a 2-D group matrix, got shape {groups.shape}")
    as_bytes = int8_to_uint8(groups.astype(np.int8))
    bits = np.unpackbits(as_bytes, axis=1)
    return (bits.sum(axis=1) % 2).astype(np.uint8)


def msb_parity_bits(groups: np.ndarray) -> np.ndarray:
    """Parity over only the MSBs of each group (what RADAR's S_B effectively is)."""
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ConfigurationError(f"Expected a 2-D group matrix, got shape {groups.shape}")
    msb = (int8_to_uint8(groups.astype(np.int8)) >> 7) & 1
    return (msb.sum(axis=1) % 2).astype(np.uint8)
