"""Classic checksum families from the embedded-networks literature.

The paper builds RADAR on a plain two's-complement *addition* checksum and
cites Maxino & Koopman's study of checksum effectiveness [17].  This module
implements the other members of that study so the design choice can be
ablated against them:

* :func:`xor_checksum` — longitudinal redundancy check (XOR of all bytes);
* :func:`addition_checksum` — two's-complement add (what RADAR binarizes);
* :func:`ones_complement_checksum` — the Internet-checksum style add with
  end-around carry;
* :func:`fletcher_checksum` — Fletcher-16/32 style dual running sums, which
  add positional sensitivity;
* :func:`adler_checksum` — Adler-32's prime-modulus variant of Fletcher.

All functions operate on the uint8 byte view of int8 weight groups, shaped
``(num_groups, group_bytes)``, and return one integer check value per group
— the same contract as :meth:`repro.baselines.crc.CrcCode.checksum_groups`,
so they can be dropped into a :class:`~repro.baselines.protectors.BaselineProtector`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigurationError

ADLER_MODULUS = 65_521  # largest prime below 2^16, as in Adler-32


def _validate_groups(groups: np.ndarray) -> np.ndarray:
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ConfigurationError(f"Expected a 2-D byte matrix, got shape {groups.shape}")
    return groups.astype(np.uint64)


def xor_checksum(groups: np.ndarray) -> np.ndarray:
    """XOR (longitudinal redundancy check) of each group's bytes.

    Detects any odd number of flips of the same bit position but is blind to
    many common error patterns; included as the weakest member of the family.
    """
    groups = _validate_groups(groups)
    result = np.zeros(groups.shape[0], dtype=np.uint64)
    for column in range(groups.shape[1]):
        result ^= groups[:, column]
    return result


def addition_checksum(groups: np.ndarray, num_bits: int = 16) -> np.ndarray:
    """Two's-complement addition checksum truncated to ``num_bits``.

    This is the raw quantity RADAR derives its 2-bit signature from (before
    masking and binarization).
    """
    if not 1 <= num_bits <= 64:
        raise ConfigurationError(f"num_bits must be in [1, 64], got {num_bits}")
    groups = _validate_groups(groups)
    mask = np.uint64((1 << num_bits) - 1)
    return groups.sum(axis=1, dtype=np.uint64) & mask


def ones_complement_checksum(groups: np.ndarray, num_bits: int = 16) -> np.ndarray:
    """One's-complement addition checksum (Internet checksum style).

    The end-around carry makes it slightly stronger than the two's-complement
    sum at the same width (it is not blind to errors that only change the
    carry out of the top bit).
    """
    if not 2 <= num_bits <= 32:
        raise ConfigurationError(f"num_bits must be in [2, 32], got {num_bits}")
    groups = _validate_groups(groups)
    modulus = np.uint64((1 << num_bits) - 1)
    totals = groups.sum(axis=1, dtype=np.uint64)
    # value mod (2^n - 1), with 0 kept as 0 (the usual one's-complement fold).
    return totals % modulus


def fletcher_checksum(groups: np.ndarray, num_bits: int = 16) -> np.ndarray:
    """Fletcher checksum with two ``num_bits/2``-wide running sums.

    ``sum_a`` accumulates the bytes, ``sum_b`` accumulates the running value
    of ``sum_a``; concatenating them yields a check value that is sensitive
    to byte order, unlike the plain addition checksum.
    """
    if num_bits not in (16, 32):
        raise ConfigurationError(f"Fletcher checksum supports 16 or 32 bits, got {num_bits}")
    groups = _validate_groups(groups)
    half = num_bits // 2
    modulus = np.uint64((1 << half) - 1)
    sum_a = np.zeros(groups.shape[0], dtype=np.uint64)
    sum_b = np.zeros(groups.shape[0], dtype=np.uint64)
    for column in range(groups.shape[1]):
        sum_a = (sum_a + groups[:, column]) % modulus
        sum_b = (sum_b + sum_a) % modulus
    return (sum_b << np.uint64(half)) | sum_a


def adler_checksum(groups: np.ndarray) -> np.ndarray:
    """Adler-32 style checksum (Fletcher with a prime modulus and sum_a seeded to 1)."""
    groups = _validate_groups(groups)
    modulus = np.uint64(ADLER_MODULUS)
    sum_a = np.ones(groups.shape[0], dtype=np.uint64)
    sum_b = np.zeros(groups.shape[0], dtype=np.uint64)
    for column in range(groups.shape[1]):
        sum_a = (sum_a + groups[:, column]) % modulus
        sum_b = (sum_b + sum_a) % modulus
    return (sum_b << np.uint64(16)) | sum_a


#: Registry used by the ablation harness and the ChecksumProtector.
CHECKSUM_FAMILIES: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "xor": xor_checksum,
    "addition": addition_checksum,
    "ones-complement": ones_complement_checksum,
    "fletcher": fletcher_checksum,
    "adler": adler_checksum,
}

#: Check bits each family stores per group (at its default width).
CHECKSUM_BITS: Dict[str, int] = {
    "xor": 8,
    "addition": 16,
    "ones-complement": 16,
    "fletcher": 16,
    "adler": 32,
}


def checksum_by_name(name: str) -> Callable[[np.ndarray], np.ndarray]:
    """Look up a checksum family by name (see :data:`CHECKSUM_FAMILIES`)."""
    key = name.lower()
    if key not in CHECKSUM_FAMILIES:
        raise ConfigurationError(
            f"Unknown checksum {name!r}; available: {', '.join(sorted(CHECKSUM_FAMILIES))}"
        )
    return CHECKSUM_FAMILIES[key]
