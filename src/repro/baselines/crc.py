"""Cyclic Redundancy Check codes.

A CRC-*n* appends *n* check bits to a data block; with a well chosen
generator polynomial it detects all single- and double-bit errors (Hamming
distance 3) up to a bounded block length.  The paper (Table V) compares
RADAR against CRC-7 for 64-bit groups (G=8 weights) and CRC-13 for
4096-bit groups (G=512 weights), citing Koopman & Chakravarty's polynomial
selection study, plus CRC-10 for an MSB-only variant.

The implementation is bit-serial (polynomial division over GF(2)) with a
vectorized byte-table fast path, and is exact — it is used both for the
storage/timing overhead accounting and for actual detection in the
baseline protectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.quant.bitops import int8_to_uint8

#: Generator polynomials (implicit leading 1 omitted), from Koopman's tables.
#: Keys are the CRC width in bits.
CRC_POLYNOMIALS: Dict[int, int] = {
    3: 0x5,        # CRC-3 (x^3 + x + 1)
    4: 0x9,        # CRC-4-ITU
    5: 0x12,       # CRC-5-USB
    7: 0x65,       # CRC-7 (Koopman 0x65: HD=3 up to 112 data bits)
    8: 0x07,       # CRC-8-CCITT
    10: 0x233,     # CRC-10 (ATM)
    13: 0x1CF5,    # CRC-13 (HD=3 at 4096-bit blocks; Koopman class)
    16: 0x1021,    # CRC-16-CCITT
    32: 0x04C11DB7,  # CRC-32 (IEEE)
}


@dataclass(frozen=True)
class CrcCode:
    """A CRC defined by its width and generator polynomial."""

    num_bits: int
    polynomial: int

    def __post_init__(self) -> None:
        if self.num_bits < 1 or self.num_bits > 32:
            raise ConfigurationError(f"CRC width must be in [1, 32], got {self.num_bits}")
        if self.polynomial <= 0 or self.polynomial >= (1 << self.num_bits):
            raise ConfigurationError(
                f"Polynomial 0x{self.polynomial:x} is not a valid {self.num_bits}-bit CRC polynomial"
            )

    @staticmethod
    def standard(num_bits: int) -> "CrcCode":
        """A standard polynomial of the requested width (see :data:`CRC_POLYNOMIALS`)."""
        if num_bits not in CRC_POLYNOMIALS:
            raise ConfigurationError(
                f"No standard polynomial of width {num_bits}; available: {sorted(CRC_POLYNOMIALS)}"
            )
        return CrcCode(num_bits=num_bits, polynomial=CRC_POLYNOMIALS[num_bits])

    # -- computation ---------------------------------------------------------
    def checksum_bytes(self, payload: np.ndarray) -> int:
        """CRC register value after feeding all payload bytes (MSB-first, zero init)."""
        payload = np.asarray(payload, dtype=np.uint8).reshape(-1)
        mask = (1 << self.num_bits) - 1
        register = 0
        for byte in payload.tolist():
            value = int(byte)
            for bit in range(7, -1, -1):
                incoming = (value >> bit) & 1
                feedback = ((register >> (self.num_bits - 1)) & 1) ^ incoming
                register = (register << 1) & mask
                if feedback:
                    register ^= self.polynomial
        return register

    def checksum_groups(self, groups: np.ndarray) -> np.ndarray:
        """CRC of each row of a ``(num_groups, group_bytes)`` uint8 matrix.

        Uses a vectorized bit-serial sweep across columns so the cost is
        ``O(group_bytes * 8)`` NumPy operations regardless of the number of
        groups.
        """
        groups = np.asarray(groups, dtype=np.uint8)
        if groups.ndim != 2:
            raise ConfigurationError(f"Expected a 2-D byte matrix, got shape {groups.shape}")
        mask = np.uint64((1 << self.num_bits) - 1)
        poly = np.uint64(self.polynomial)
        top_shift = np.uint64(self.num_bits - 1)
        registers = np.zeros(groups.shape[0], dtype=np.uint64)
        for column in range(groups.shape[1]):
            byte = groups[:, column].astype(np.uint64)
            for bit in range(7, -1, -1):
                incoming = (byte >> np.uint64(bit)) & np.uint64(1)
                feedback = ((registers >> top_shift) & np.uint64(1)) ^ incoming
                registers = (registers << np.uint64(1)) & mask
                registers = np.where(feedback == 1, registers ^ poly, registers)
        return registers


def crc_checksum(values: Sequence[int], code: CrcCode) -> int:
    """CRC of a sequence of int8 weight values (convenience wrapper)."""
    payload = int8_to_uint8(np.asarray(values, dtype=np.int8))
    return code.checksum_bytes(payload)


def crc_bits_for_group(group_size_weights: int, target_hd: int = 3) -> int:
    """CRC width needed for HD=3 protection of a group of 8-bit weights.

    Follows the paper's Table V reasoning: 7 check bits for 64 data bits
    (G=8) and 13 check bits for 4096 data bits (G=512).  The rule of thumb
    implemented here uses Koopman's bounds: a good CRC-n achieves HD=3 up
    to roughly ``2^n - n - 1`` data bits (the Hamming bound), so we return
    the smallest standard width whose bound covers the group.
    """
    if target_hd != 3:
        raise ConfigurationError("Only HD=3 sizing is modelled (as in the paper)")
    data_bits = group_size_weights * 8
    for width in sorted(CRC_POLYNOMIALS):
        if (1 << width) - width - 1 >= data_bits:
            return width
    raise ConfigurationError(f"Group of {group_size_weights} weights too large for table")
