"""Hamming SEC-DED codes over weight groups.

A Hamming code with ``r`` parity bits protects up to ``2^r - r - 1`` data
bits against single-bit errors; the extended (SEC-DED) variant adds one
overall parity bit and additionally *detects* double-bit errors.  The
paper quotes 7 check bits for 64 data bits (G=8) and 13 for 4096 data bits
(G=512), which is exactly ``hamming_parity_bits(...) `` below.

The implementation provides real encoding/syndrome decoding so the code
can be exercised end to end (detection and single-error correction on
int8 weight groups), not just counted for storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.quant.bitops import int8_to_uint8, uint8_to_int8


def hamming_parity_bits(data_bits: int, extended: bool = True) -> int:
    """Number of check bits of a (SEC-DED if ``extended``) Hamming code.

    Smallest ``r`` with ``2^r >= data_bits + r + 1``, plus one for the
    extended overall-parity bit.
    """
    if data_bits < 1:
        raise ConfigurationError(f"data_bits must be positive, got {data_bits}")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + (1 if extended else 0)


@dataclass(frozen=True)
class HammingSecDed:
    """Extended Hamming code over ``data_bits`` bits."""

    data_bits: int

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ConfigurationError(f"data_bits must be positive, got {self.data_bits}")

    @property
    def parity_bits(self) -> int:
        return hamming_parity_bits(self.data_bits, extended=True)

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.parity_bits

    # -- bit plumbing ---------------------------------------------------------
    def _positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Codeword positions (1-based) of parity and data bits for the base code."""
        r = self.parity_bits - 1  # base Hamming parity bits (without the extra overall bit)
        total = self.data_bits + r
        positions = np.arange(1, total + 1)
        is_parity = (positions & (positions - 1)) == 0  # powers of two
        return positions[is_parity], positions[~is_parity]

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a flat 0/1 array of ``data_bits`` into a codeword (+ overall parity).

        Returns a 0/1 array of length ``total_bits``; the last element is the
        overall parity bit of the extended code.
        """
        data = np.asarray(data).astype(np.uint8).reshape(-1)
        if data.size != self.data_bits:
            raise ConfigurationError(
                f"Expected {self.data_bits} data bits, got {data.size}"
            )
        parity_positions, data_positions = self._positions()
        total = self.data_bits + parity_positions.size
        codeword = np.zeros(total + 1, dtype=np.uint8)  # index 0 unused (1-based positions)
        codeword[data_positions] = data
        for parity_position in parity_positions:
            covered = (np.arange(1, total + 1) & parity_position) != 0
            codeword[parity_position] = codeword[1:][covered].sum() % 2
        overall = codeword[1:].sum() % 2
        return np.concatenate([codeword[1:], [overall]]).astype(np.uint8)

    def syndrome(self, codeword: np.ndarray) -> Tuple[int, int]:
        """Return ``(syndrome, overall_parity_mismatch)`` for a received codeword."""
        codeword = np.asarray(codeword).astype(np.uint8).reshape(-1)
        if codeword.size != self.total_bits:
            raise ConfigurationError(
                f"Expected a codeword of {self.total_bits} bits, got {codeword.size}"
            )
        body = codeword[:-1]
        overall = int(codeword.sum() % 2)
        parity_positions, _ = self._positions()
        syndrome = 0
        total = body.size
        for parity_position in parity_positions:
            covered = (np.arange(1, total + 1) & parity_position) != 0
            if int(body[covered].sum() % 2):
                syndrome |= int(parity_position)
        return syndrome, overall

    def classify(self, codeword: np.ndarray) -> str:
        """Classify a received codeword: 'clean', 'single' (correctable) or 'double'."""
        syndrome, overall = self.syndrome(codeword)
        if syndrome == 0 and overall == 0:
            return "clean"
        if overall == 1:
            return "single"
        return "double"

    # -- convenience over int8 weight groups -----------------------------------
    def encode_weights(self, weights: np.ndarray) -> np.ndarray:
        """Encode a group of int8 weights (bits taken LSB-first per weight)."""
        bits = np.unpackbits(int8_to_uint8(np.asarray(weights, dtype=np.int8)), bitorder="little")
        return self.encode(bits)

    def check_weights(self, weights: np.ndarray, codeword: np.ndarray) -> str:
        """Classify the current weights against a stored codeword's parity bits.

        The received codeword is reconstructed from the (possibly corrupted)
        weights plus the stored parity bits, mirroring how the parity bits
        would be kept in secure storage while the data sits in DRAM.
        """
        bits = np.unpackbits(int8_to_uint8(np.asarray(weights, dtype=np.int8)), bitorder="little")
        parity_positions, data_positions = self._positions()
        total = bits.size + parity_positions.size
        received = np.zeros(total + 1, dtype=np.uint8)
        received[data_positions] = bits
        stored = np.asarray(codeword).astype(np.uint8).reshape(-1)
        received[parity_positions] = stored[parity_positions - 1]
        body = received[1:]
        overall = stored[-1]
        full = np.concatenate([body, [overall]])
        # Recompute overall parity including the observed data bits.
        return self.classify(full)
