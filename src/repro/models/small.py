"""Small auxiliary models (LeNet-5 variant and an MLP).

These are not part of the paper's evaluation but are heavily used by the
test suite and the quick examples: the full RADAR pipeline (quantize →
attack → detect → recover) runs on them in well under a second.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import BatchNorm2d, Flatten, GlobalAvgPool2d, MaxPool2d, ReLU, Sequential
from repro.nn.module import Module
from repro.quant.layers import QuantConv2d, QuantLinear
from repro.utils.rng import new_rng


class LeNet5(Module):
    """A small LeNet-style CNN for 32x32 inputs."""

    def __init__(
        self, num_classes: int = 10, in_channels: int = 3, seed: Optional[int] = None
    ) -> None:
        super().__init__()
        rng = new_rng(("lenet5", num_classes, seed))
        self.features = Sequential(
            QuantConv2d(in_channels, 6, kernel_size=5, stride=1, padding=2, bias=True, rng=rng),
            ReLU(),
            MaxPool2d(2),
            QuantConv2d(6, 16, kernel_size=5, stride=1, padding=0, bias=True, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        self.flatten = Flatten()
        self.classifier = Sequential(
            QuantLinear(16 * 6 * 6, 120, rng=rng),
            ReLU(),
            QuantLinear(120, 84, rng=rng),
            ReLU(),
            QuantLinear(84, num_classes, rng=rng),
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self.features(inputs)
        out = self.flatten(out)
        return self.classifier(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_output)
        grad = self.flatten.backward(grad)
        return self.features.backward(grad)


class MLP(Module):
    """Fully connected classifier over flattened inputs."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int = 10,
        hidden_dims: Sequence[int] = (128, 64),
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = new_rng(("mlp", input_dim, tuple(hidden_dims), num_classes, seed))
        self.input_dim = input_dim
        layers = []
        current = input_dim
        for hidden in hidden_dims:
            layers.append(QuantLinear(current, hidden, rng=rng))
            layers.append(ReLU())
            current = hidden
        layers.append(QuantLinear(current, num_classes, rng=rng))
        self.body = Sequential(*layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim > 2:
            inputs = inputs.reshape(inputs.shape[0], -1)
        self._input_was_flattened = True
        return self.body(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_output)


def lenet5(num_classes: int = 10, seed: Optional[int] = None, **kwargs) -> LeNet5:
    """Factory for :class:`LeNet5`."""
    return LeNet5(num_classes=num_classes, seed=seed, **kwargs)


def mlp(
    input_dim: int = 3 * 8 * 8, num_classes: int = 10, seed: Optional[int] = None, **kwargs
) -> MLP:
    """Factory for :class:`MLP`."""
    return MLP(input_dim=input_dim, num_classes=num_classes, seed=seed, **kwargs)
