"""Model architectures used in the paper's evaluation.

* ``resnet20`` — CIFAR-style ResNet (He et al., 2016) with 3 stages of
  3 basic blocks, exactly the 272k-parameter network attacked in the
  paper's CIFAR-10 experiments.
* ``resnet18`` — ImageNet-style ResNet-18 with 4 stages of 2 basic
  blocks (11.7M parameters with 1000 classes), used for the paper's
  ImageNet experiments.
* ``lenet5`` / ``mlp`` — small auxiliary models used by the unit tests and
  quick examples.

All conv / linear layers are the quantized variants from
:mod:`repro.quant.layers`; a model becomes the paper's 8-bit attack target
after calling :func:`repro.quant.quantize_model`.
"""

from repro.models.blocks import BasicBlock, conv3x3
from repro.models.resnet_cifar import ResNetCIFAR, resnet20, resnet32
from repro.models.resnet_imagenet import ResNetImageNet, resnet18
from repro.models.small import LeNet5, MLP, lenet5, mlp
from repro.models.registry import available_models, build_model, register_model
from repro.models.zoo import ModelZoo, get_pretrained

__all__ = [
    "BasicBlock",
    "conv3x3",
    "ResNetCIFAR",
    "resnet20",
    "resnet32",
    "ResNetImageNet",
    "resnet18",
    "LeNet5",
    "MLP",
    "lenet5",
    "mlp",
    "available_models",
    "build_model",
    "register_model",
    "ModelZoo",
    "get_pretrained",
]
