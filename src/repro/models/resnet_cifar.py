"""CIFAR-style ResNet (ResNet-20 / ResNet-32) as used in the paper.

Architecture follows He et al. (2016) §4.2: a 3x3 stem with 16 channels,
three stages of ``n`` basic blocks with 16/32/64 channels (stride 2 at each
stage transition), global average pooling, and a fully connected
classifier.  ResNet-20 corresponds to ``n = 3``; its quantizable weight
count (~268k at 10 classes) matches the signature-storage numbers reported
in the paper (8.2 KB at G = 8).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.blocks import BasicBlock, conv3x3
from repro.nn.layers import BatchNorm2d, GlobalAvgPool2d, ReLU, Sequential
from repro.nn.module import Module
from repro.quant.layers import QuantLinear
from repro.utils.rng import new_rng


class ResNetCIFAR(Module):
    """ResNet for 32x32 inputs with ``6n + 2`` layers."""

    def __init__(
        self,
        num_blocks_per_stage: int,
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 16,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = new_rng(("resnet-cifar", num_blocks_per_stage, num_classes, seed))
        self.num_classes = num_classes

        self.conv1 = conv3x3(in_channels, base_width, stride=1, rng=rng)
        self.bn1 = BatchNorm2d(base_width)
        self.relu = ReLU()

        widths = [base_width, base_width * 2, base_width * 4]
        strides = [1, 2, 2]
        stages: List[Sequential] = []
        current = base_width
        for width, stride in zip(widths, strides):
            blocks = []
            for block_index in range(num_blocks_per_stage):
                block_stride = stride if block_index == 0 else 1
                blocks.append(BasicBlock(current, width, block_stride, rng))
                current = width
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages

        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(widths[-1], num_classes, bias=True, rng=rng)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self.relu(self.bn1(self.conv1(inputs)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.fc(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.stage3.backward(grad)
        grad = self.stage2.backward(grad)
        grad = self.stage1.backward(grad)
        grad = self.relu.backward(grad)
        grad = self.bn1.backward(grad)
        return self.conv1.backward(grad)


def resnet20(num_classes: int = 10, seed: Optional[int] = None, **kwargs) -> ResNetCIFAR:
    """ResNet-20 for CIFAR-scale inputs (the paper's CIFAR-10 target model)."""
    return ResNetCIFAR(3, num_classes=num_classes, seed=seed, **kwargs)


def resnet32(num_classes: int = 10, seed: Optional[int] = None, **kwargs) -> ResNetCIFAR:
    """ResNet-32 for CIFAR-scale inputs."""
    return ResNetCIFAR(5, num_classes=num_classes, seed=seed, **kwargs)
