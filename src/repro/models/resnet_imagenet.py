"""ImageNet-style ResNet-18.

The architecture is the standard ResNet-18 (He et al., 2016): 7x7 stride-2
stem with 64 channels, 3x3 stride-2 max pooling, four stages of two basic
blocks at 64/128/256/512 channels, global average pooling and a linear
classifier.  With 1000 classes the quantizable weight count is ~11.68M,
which reproduces the paper's signature-storage figure (5.6 KB at G = 512).

Because full 224x224 ImageNet evaluation is not feasible in the NumPy
substrate, the constructor accepts a ``small_input`` flag that swaps the
stem for the CIFAR-style 3x3 stride-1 stem (as is common for Tiny-ImageNet
work).  The four residual stages — which hold >99 % of the weights and are
where PBFA strikes — are identical either way.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.blocks import BasicBlock, conv3x3
from repro.nn.layers import BatchNorm2d, GlobalAvgPool2d, MaxPool2d, ReLU, Sequential
from repro.nn.module import Module
from repro.quant.layers import QuantConv2d, QuantLinear
from repro.utils.rng import new_rng


class ResNetImageNet(Module):
    """ResNet with the ImageNet stage layout (four stages of basic blocks)."""

    def __init__(
        self,
        blocks_per_stage: Optional[List[int]] = None,
        num_classes: int = 1000,
        in_channels: int = 3,
        small_input: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        blocks_per_stage = blocks_per_stage or [2, 2, 2, 2]
        rng = new_rng(("resnet-imagenet", tuple(blocks_per_stage), num_classes, seed))
        self.num_classes = num_classes
        self.small_input = small_input

        if small_input:
            self.conv1 = conv3x3(in_channels, 64, stride=1, rng=rng)
            self.maxpool = None
        else:
            self.conv1 = QuantConv2d(
                in_channels, 64, kernel_size=7, stride=2, padding=3, bias=False, rng=rng
            )
            self.maxpool = MaxPool2d(kernel_size=3, stride=2, padding=1)
        self.bn1 = BatchNorm2d(64)
        self.relu = ReLU()

        widths = [64, 128, 256, 512]
        strides = [1, 2, 2, 2]
        current = 64
        stages: List[Sequential] = []
        for width, stride, count in zip(widths, strides, blocks_per_stage):
            blocks = []
            for block_index in range(count):
                block_stride = stride if block_index == 0 else 1
                blocks.append(BasicBlock(current, width, block_stride, rng))
                current = width
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3, self.stage4 = stages

        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(widths[-1], num_classes, bias=True, rng=rng)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self.relu(self.bn1(self.conv1(inputs)))
        if self.maxpool is not None:
            out = self.maxpool(out)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.stage4(out)
        out = self.pool(out)
        return self.fc(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.stage4.backward(grad)
        grad = self.stage3.backward(grad)
        grad = self.stage2.backward(grad)
        grad = self.stage1.backward(grad)
        if self.maxpool is not None:
            grad = self.maxpool.backward(grad)
        grad = self.relu.backward(grad)
        grad = self.bn1.backward(grad)
        return self.conv1.backward(grad)


def resnet18(
    num_classes: int = 1000,
    small_input: bool = False,
    seed: Optional[int] = None,
    **kwargs,
) -> ResNetImageNet:
    """ResNet-18 (the paper's ImageNet target model)."""
    return ResNetImageNet(
        [2, 2, 2, 2], num_classes=num_classes, small_input=small_input, seed=seed, **kwargs
    )
