"""A tiny model registry keyed by name (``"resnet20"``, ``"resnet18"``, ...)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.nn.module import Module

_REGISTRY: Dict[str, Callable[..., Module]] = {}


def register_model(name: str, factory: Callable[..., Module] = None):
    """Register a model factory under ``name``.

    Can be used directly (``register_model("foo", factory)``) or as a
    decorator (``@register_model("foo")``).
    """
    def decorator(func: Callable[..., Module]) -> Callable[..., Module]:
        key = name.lower()
        if key in _REGISTRY:
            raise ConfigurationError(f"Model {name!r} is already registered")
        _REGISTRY[key] = func
        return func

    if factory is not None:
        return decorator(factory)
    return decorator


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"Unknown model {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key](**kwargs)


def available_models() -> List[str]:
    """Names of all registered models."""
    return sorted(_REGISTRY)


def _register_builtin_models() -> None:
    # Imported lazily to avoid circular imports at package import time.
    from repro.models.resnet_cifar import resnet20, resnet32
    from repro.models.resnet_imagenet import resnet18
    from repro.models.small import lenet5, mlp

    for model_name, factory in [
        ("resnet20", resnet20),
        ("resnet32", resnet32),
        ("resnet18", resnet18),
        ("lenet5", lenet5),
        ("mlp", mlp),
    ]:
        if model_name not in _REGISTRY:
            _REGISTRY[model_name] = factory


_register_builtin_models()
