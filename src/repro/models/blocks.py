"""Residual building blocks shared by the CIFAR and ImageNet ResNets."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import BatchNorm2d, Identity, ReLU, Sequential
from repro.nn.module import Module
from repro.quant.layers import QuantConv2d
from repro.utils.rng import new_rng


def conv3x3(
    in_channels: int,
    out_channels: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> QuantConv2d:
    """3x3 quantized convolution with padding 1 and no bias."""
    return QuantConv2d(
        in_channels, out_channels, kernel_size=3, stride=stride, padding=1, bias=False, rng=rng
    )


def conv1x1(
    in_channels: int,
    out_channels: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> QuantConv2d:
    """1x1 quantized convolution (projection shortcut)."""
    return QuantConv2d(
        in_channels, out_channels, kernel_size=1, stride=stride, padding=0, bias=False, rng=rng
    )


class BasicBlock(Module):
    """Standard two-convolution residual block with identity or projection shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else new_rng("basic-block")
        self.conv1 = conv3x3(in_channels, out_channels, stride, rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = conv3x3(out_channels, out_channels, 1, rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()

        if stride != 1 or in_channels != out_channels * self.expansion:
            self.downsample = Sequential(
                conv1x1(in_channels, out_channels * self.expansion, stride, rng),
                BatchNorm2d(out_channels * self.expansion),
            )
        else:
            self.downsample = Identity()
        self._shortcut_input = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shortcut_input = inputs
        out = self.conv1(inputs)
        out = self.bn1(out)
        out = self.relu1(out)
        out = self.conv2(out)
        out = self.bn2(out)
        shortcut = self.downsample(inputs)
        out = out + shortcut
        return self.relu2(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_output)
        # The addition fans the gradient out to both branches unchanged.
        grad_main = self.bn2.backward(grad)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        grad_shortcut = self.downsample.backward(grad)
        return grad_main + grad_shortcut
