"""Training and evaluation loops.

These are ordinary supervised-learning loops over the NumPy framework; they
exist so the model zoo can produce trained (then quantized) models for the
attack/defense experiments without any external dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.loader import DataLoader, iterate_batches
from repro.data.synthetic import Dataset
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam, SGD, Optimizer
from repro.nn.scheduler import CosineAnnealingLR
from repro.utils.logging import get_logger

logger = get_logger("models.training")


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`fit`."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    cosine_schedule: bool = True
    seed: int = 0
    log_every: int = 0  # batches; 0 disables intra-epoch logging


@dataclass
class TrainResult:
    """Record of a training run."""

    train_losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracies[-1] if self.test_accuracies else float("nan")


def _build_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    name = config.optimizer.lower()
    if name == "sgd":
        return SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    if name == "adam":
        return Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    raise ValueError(f"Unknown optimizer {config.optimizer!r}")


def evaluate_accuracy(
    model: Module, dataset: Dataset, batch_size: int = 128, max_samples: Optional[int] = None
) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (fraction in [0, 1])."""
    model.eval()
    images, labels = dataset.images, dataset.labels
    if max_samples is not None and max_samples < len(dataset):
        images, labels = images[:max_samples], labels[:max_samples]
    correct = 0
    total = 0
    for batch_images, batch_labels in iterate_batches(images, labels, batch_size):
        logits = model(batch_images)
        predictions = logits.argmax(axis=1)
        correct += int((predictions == batch_labels).sum())
        total += batch_labels.shape[0]
    return correct / total if total else float("nan")


def evaluate_loss(
    model: Module, images: np.ndarray, labels: np.ndarray, batch_size: int = 128
) -> float:
    """Mean cross-entropy loss of ``model`` on the given samples."""
    model.eval()
    criterion = CrossEntropyLoss()
    losses = []
    weights = []
    for batch_images, batch_labels in iterate_batches(images, labels, batch_size):
        logits = model(batch_images)
        losses.append(criterion(logits, batch_labels))
        weights.append(batch_labels.shape[0])
    if not losses:
        return float("nan")
    return float(np.average(losses, weights=weights))


def fit(
    model: Module,
    train_set: Dataset,
    test_set: Optional[Dataset] = None,
    config: Optional[TrainConfig] = None,
) -> TrainResult:
    """Train ``model`` on ``train_set`` and return per-epoch metrics."""
    config = config or TrainConfig()
    optimizer = _build_optimizer(model, config)
    scheduler = CosineAnnealingLR(optimizer, config.epochs) if config.cosine_schedule else None
    criterion = CrossEntropyLoss()
    loader = DataLoader(train_set, batch_size=config.batch_size, shuffle=True, seed=config.seed)
    result = TrainResult()

    for epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        correct = 0
        seen = 0
        for batch_index, (images, labels) in enumerate(loader):
            optimizer.zero_grad()
            logits = model(images)
            loss = criterion(logits, labels)
            grad_logits = criterion.backward()
            model.backward(grad_logits)
            optimizer.step()

            epoch_losses.append(loss)
            correct += int((logits.argmax(axis=1) == labels).sum())
            seen += labels.shape[0]
            if config.log_every and (batch_index + 1) % config.log_every == 0:
                logger.info(
                    "epoch %d batch %d loss %.4f", epoch + 1, batch_index + 1, loss
                )

        train_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
        train_accuracy = correct / seen if seen else float("nan")
        result.train_losses.append(train_loss)
        result.train_accuracies.append(train_accuracy)
        if test_set is not None:
            test_accuracy = evaluate_accuracy(model, test_set)
            result.test_accuracies.append(test_accuracy)
            logger.info(
                "epoch %d: loss %.4f train_acc %.3f test_acc %.3f",
                epoch + 1, train_loss, train_accuracy, test_accuracy,
            )
        if scheduler is not None:
            scheduler.step()
    model.eval()
    return result
