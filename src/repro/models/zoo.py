"""Model zoo: named experiment setups with train-once / cache-forever weights.

The paper's experiments start from a trained 8-bit quantized ResNet-20
(CIFAR-10) and ResNet-18 (ImageNet).  Training in the NumPy substrate is
slow enough that we do it once per setup and cache the resulting weights on
disk (location controlled by the ``REPRO_CACHE_DIR`` environment variable,
default ``~/.cache/repro_radar``).  Every consumer — tests, examples,
benchmark harnesses — goes through :func:`get_pretrained` so they all see
the same trained model.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.data.synthetic import Dataset, make_cifar10_like, make_imagenet_like, make_tiny_dataset
from repro.errors import ConfigurationError
from repro.models.registry import build_model
from repro.models.training import TrainConfig, evaluate_accuracy, fit
from repro.nn.module import Module
from repro.quant.layers import quantize_model
from repro.utils.logging import get_logger
from repro.utils.serialization import load_state_dict, save_state_dict

logger = get_logger("models.zoo")


@dataclass(frozen=True)
class ZooEntry:
    """A named experiment setup: model + dataset + training recipe."""

    name: str
    model_name: str
    model_kwargs: tuple
    dataset_builder: Callable[[], Tuple[Dataset, Dataset]]
    train_config: TrainConfig
    description: str = ""


def default_cache_dir() -> Path:
    """Directory used to cache trained weights and experiment artifacts."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro_radar"


def _cifar_setup() -> Tuple[Dataset, Dataset]:
    return make_cifar10_like(train_size=2000, test_size=1000, seed=7)


def _imagenet_setup() -> Tuple[Dataset, Dataset]:
    return make_imagenet_like(num_classes=20, image_size=32, train_size=2500, test_size=1000, seed=7)


def _tiny_setup() -> Tuple[Dataset, Dataset]:
    return make_tiny_dataset(num_classes=4, image_size=8, train_size=384, test_size=192, seed=7)


_ZOO: Dict[str, ZooEntry] = {
    # The paper's CIFAR-10 target: 8-bit ResNet-20.
    "resnet20-cifar": ZooEntry(
        name="resnet20-cifar",
        model_name="resnet20",
        model_kwargs=(("num_classes", 10),),
        dataset_builder=_cifar_setup,
        train_config=TrainConfig(epochs=6, batch_size=64, lr=2e-3, optimizer="adam", seed=1),
        description="ResNet-20 on the CIFAR-10-like synthetic task (paper's CIFAR target).",
    ),
    # The paper's ImageNet target: 8-bit ResNet-18 (scaled-down data, true topology).
    "resnet18-imagenet": ZooEntry(
        name="resnet18-imagenet",
        model_name="resnet18",
        model_kwargs=(("num_classes", 20), ("small_input", False)),
        dataset_builder=_imagenet_setup,
        train_config=TrainConfig(epochs=5, batch_size=64, lr=2e-3, optimizer="adam", seed=2),
        description="ResNet-18 on the ImageNet-like synthetic task (paper's ImageNet target).",
    ),
    # Small setups for tests and quick examples.
    "lenet-tiny": ZooEntry(
        name="lenet-tiny",
        model_name="mlp",
        model_kwargs=(("input_dim", 3 * 8 * 8), ("num_classes", 4), ("hidden_dims", (64, 32))),
        dataset_builder=_tiny_setup,
        train_config=TrainConfig(epochs=8, batch_size=64, lr=3e-3, optimizer="adam", seed=3),
        description="Small MLP on a tiny synthetic task; used by tests and the quickstart.",
    ),
}


def available_setups() -> Tuple[str, ...]:
    """Names of all zoo setups."""
    return tuple(sorted(_ZOO))


def register_setup(entry: ZooEntry, overwrite: bool = False) -> None:
    """Register a custom zoo setup (mainly useful for tests)."""
    if entry.name in _ZOO and not overwrite:
        raise ConfigurationError(f"Zoo setup {entry.name!r} already exists")
    _ZOO[entry.name] = entry


@dataclass
class PretrainedBundle:
    """What :func:`get_pretrained` returns."""

    name: str
    model: Module
    train_set: Dataset
    test_set: Dataset
    clean_accuracy: float
    metadata: Dict


class ModelZoo:
    """Train-or-load manager for the named setups."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    def _paths(self, name: str) -> Tuple[Path, Path]:
        base = self.cache_dir / "zoo"
        return base / f"{name}.npz", base / f"{name}.json"

    def is_cached(self, name: str) -> bool:
        weights_path, meta_path = self._paths(name)
        return weights_path.exists() and meta_path.exists()

    def clear(self, name: str) -> None:
        """Remove cached weights for ``name`` (next load retrains)."""
        for path in self._paths(name):
            if path.exists():
                path.unlink()

    def load(self, name: str, force_retrain: bool = False) -> PretrainedBundle:
        """Load (training and caching if needed) the setup ``name``.

        The returned model is already quantized to 8 bits.
        """
        if name not in _ZOO:
            raise ConfigurationError(
                f"Unknown zoo setup {name!r}; available: {', '.join(available_setups())}"
            )
        entry = _ZOO[name]
        train_set, test_set = entry.dataset_builder()
        model = build_model(entry.model_name, **dict(entry.model_kwargs))

        weights_path, meta_path = self._paths(name)
        if self.is_cached(name) and not force_retrain:
            logger.info("loading cached weights for %s from %s", name, weights_path)
            model.load_state_dict(load_state_dict(weights_path))
            with open(meta_path, "r", encoding="utf-8") as handle:
                metadata = json.load(handle)
        else:
            logger.info("training %s (%s) from scratch", name, entry.model_name)
            result = fit(model, train_set, test_set, entry.train_config)
            save_state_dict(model.state_dict(), weights_path)
            metadata = {
                "name": name,
                "model": entry.model_name,
                "model_kwargs": dict(entry.model_kwargs),
                "train_config": asdict(entry.train_config),
                "float_test_accuracy": result.final_test_accuracy,
                "train_losses": result.train_losses,
            }
            meta_path.parent.mkdir(parents=True, exist_ok=True)
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(metadata, handle, indent=2, default=str)

        quantize_model(model)
        model.eval()
        clean_accuracy = evaluate_accuracy(model, test_set)
        return PretrainedBundle(
            name=name,
            model=model,
            train_set=train_set,
            test_set=test_set,
            clean_accuracy=clean_accuracy,
            metadata=metadata,
        )


def get_pretrained(name: str, cache_dir: Optional[Path] = None, force_retrain: bool = False) -> PretrainedBundle:
    """Convenience wrapper around :class:`ModelZoo`."""
    return ModelZoo(cache_dir=cache_dir).load(name, force_retrain=force_retrain)
