"""RADAR: Run-time Adversarial Weight Attack Detection and Accuracy Recovery.

A self-contained reproduction of the DATE 2021 paper by Li, Rakin, He, Fan
and Chakrabarti.  The package provides:

* ``repro.nn`` / ``repro.tensor`` — a NumPy neural-network framework with
  explicit forward/backward passes;
* ``repro.quant`` — 8-bit weight quantization and bit manipulation;
* ``repro.models`` / ``repro.data`` — the ResNet-20 / ResNet-18 targets and
  synthetic datasets;
* ``repro.attacks`` — the Progressive Bit-Flip Attack and variants;
* ``repro.core`` — the RADAR detection and recovery scheme, plus the
  amortized scan scheduler and multi-model protection service;
* ``repro.telemetry`` — fleet SLA metrics (detection-latency percentiles),
  durable persistence of calibrated state across restarts, span tracing
  across the process pool, Prometheus text exposition and the read-only
  observability HTTP surface;
* ``repro.baselines`` — CRC / Hamming / parity comparison codes;
* ``repro.memsim`` — DRAM, rowhammer and timing simulation;
* ``repro.experiments`` — one harness per paper table and figure, plus
  the scripted attack-campaign SLA driver.

Quick taste (see ``examples/quickstart.py`` for the full version)::

    from repro.models.zoo import get_pretrained
    from repro.attacks import ProgressiveBitFlipAttack
    from repro.core import RadarConfig, ModelProtector

    bundle = get_pretrained("resnet20-cifar")
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(bundle.model)
    # ... attack the model, then ...
    report = protector.scan_and_recover(bundle.model)
"""

from repro.version import __version__

__all__ = ["__version__"]
