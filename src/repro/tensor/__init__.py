"""Low-level NumPy compute kernels used by the neural-network framework.

The kernels are written as pure functions with explicit forward and
backward variants.  :mod:`repro.nn` wraps them into stateful ``Module``
objects; they can also be used directly for testing and for the timing
model's operation counting.
"""

from repro.tensor.im2col import col2im, im2col, conv_output_size
from repro.tensor.functional import (
    avg_pool2d_backward,
    avg_pool2d_forward,
    batchnorm_backward,
    batchnorm_forward,
    conv2d_backward,
    conv2d_forward,
    cross_entropy_backward,
    cross_entropy_forward,
    global_avg_pool_backward,
    global_avg_pool_forward,
    linear_backward,
    linear_forward,
    log_softmax,
    max_pool2d_backward,
    max_pool2d_forward,
    relu_backward,
    relu_forward,
    softmax,
)

__all__ = [
    "im2col",
    "col2im",
    "conv_output_size",
    "conv2d_forward",
    "conv2d_backward",
    "linear_forward",
    "linear_backward",
    "relu_forward",
    "relu_backward",
    "batchnorm_forward",
    "batchnorm_backward",
    "max_pool2d_forward",
    "max_pool2d_backward",
    "avg_pool2d_forward",
    "avg_pool2d_backward",
    "global_avg_pool_forward",
    "global_avg_pool_backward",
    "softmax",
    "log_softmax",
    "cross_entropy_forward",
    "cross_entropy_backward",
]
