"""Forward / backward compute kernels for the layers used by the models.

Every ``*_forward`` function returns ``(output, cache)`` where ``cache``
holds whatever the matching ``*_backward`` function needs.  The caches are
plain tuples so they stay cheap and picklable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.im2col import col2im, conv_output_size, im2col

Cache = Tuple


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------

def conv2d_forward(
    inputs: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, Cache]:
    """2-D convolution (cross-correlation) in NCHW layout.

    Parameters
    ----------
    inputs:
        ``(N, C_in, H, W)``.
    weight:
        ``(C_out, C_in, kernel_h, kernel_w)``.
    bias:
        Optional ``(C_out,)``.
    """
    if inputs.ndim != 4 or weight.ndim != 4:
        raise ShapeError(
            f"conv2d expects 4-D input and weight, got {inputs.shape} and {weight.shape}"
        )
    if inputs.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"conv2d channel mismatch: input has {inputs.shape[1]} channels, "
            f"weight expects {weight.shape[1]}"
        )
    batch, _, height, width = inputs.shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    columns = im2col(inputs, (kernel_h, kernel_w), stride, padding)
    weight_matrix = weight.reshape(out_channels, -1)
    output = columns @ weight_matrix.T
    if bias is not None:
        output += bias
    output = output.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    cache = (columns, weight.shape, inputs.shape, stride, padding, bias is not None)
    return output, cache


def conv2d_backward(
    grad_output: np.ndarray, weight: np.ndarray, cache: Cache
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Gradients of conv2d w.r.t. input, weight and bias.

    The weight tensor is passed explicitly (it is not kept in the cache to
    avoid holding a second copy for large models).  Returns
    ``(grad_input, grad_weight, grad_bias)``; ``grad_bias`` is ``None`` when
    the forward pass had no bias.
    """
    columns, weight_shape, input_shape, stride, padding, has_bias = cache
    out_channels, _, kernel_h, kernel_w = weight_shape

    grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(-1, out_channels)
    grad_weight = (grad_matrix.T @ columns).reshape(weight_shape)
    grad_bias = grad_matrix.sum(axis=0) if has_bias else None

    weight_matrix = weight.reshape(out_channels, -1)
    grad_columns = grad_matrix @ weight_matrix
    grad_input = col2im(grad_columns, input_shape, (kernel_h, kernel_w), stride, padding)
    return grad_input, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Fully connected
# ---------------------------------------------------------------------------

def linear_forward(
    inputs: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Cache]:
    """Affine transform ``y = x @ W.T + b``.

    ``inputs`` is ``(N, in_features)``; ``weight`` is ``(out_features, in_features)``.
    """
    if inputs.ndim != 2:
        raise ShapeError(f"linear expects a 2-D input, got shape {inputs.shape}")
    if inputs.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"linear feature mismatch: input has {inputs.shape[1]}, weight expects {weight.shape[1]}"
        )
    output = inputs @ weight.T
    if bias is not None:
        output += bias
    cache = (inputs, bias is not None)
    return output, cache


def linear_backward(
    grad_output: np.ndarray, weight: np.ndarray, cache: Cache
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Gradients of the affine transform w.r.t. input, weight, bias."""
    inputs, has_bias = cache
    grad_input = grad_output @ weight
    grad_weight = grad_output.T @ inputs
    grad_bias = grad_output.sum(axis=0) if has_bias else None
    return grad_input, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu_forward(inputs: np.ndarray) -> Tuple[np.ndarray, Cache]:
    """Rectified linear unit."""
    mask = inputs > 0
    return inputs * mask, (mask,)


def relu_backward(grad_output: np.ndarray, cache: Cache) -> np.ndarray:
    (mask,) = cache
    return grad_output * mask


# ---------------------------------------------------------------------------
# Batch normalization (2-D, per channel)
# ---------------------------------------------------------------------------

def batchnorm_forward(
    inputs: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tuple[np.ndarray, Cache, np.ndarray, np.ndarray]:
    """Channel-wise batch normalization for NCHW tensors.

    Returns ``(output, cache, new_running_mean, new_running_var)``.  The
    running statistics are returned rather than mutated in place so the
    caller (the nn layer) decides when to commit them.
    """
    if inputs.ndim != 4:
        raise ShapeError(f"batchnorm expects a 4-D NCHW tensor, got {inputs.shape}")
    axes = (0, 2, 3)
    if training:
        mean = inputs.mean(axis=axes)
        var = inputs.var(axis=axes)
        count = inputs.shape[0] * inputs.shape[2] * inputs.shape[3]
        # Unbiased variance for the running estimate, as in torch.nn.BatchNorm2d.
        unbiased_var = var * count / max(count - 1, 1)
        new_running_mean = (1 - momentum) * running_mean + momentum * mean
        new_running_var = (1 - momentum) * running_var + momentum * unbiased_var
    else:
        mean = running_mean
        var = running_var
        new_running_mean = running_mean
        new_running_var = running_var

    mean_b = mean.reshape(1, -1, 1, 1)
    var_b = var.reshape(1, -1, 1, 1)
    inv_std = 1.0 / np.sqrt(var_b + eps)
    normalized = (inputs - mean_b) * inv_std
    output = gamma.reshape(1, -1, 1, 1) * normalized + beta.reshape(1, -1, 1, 1)
    cache = (normalized, inv_std, gamma, training)
    return output, cache, new_running_mean, new_running_var


def batchnorm_backward(
    grad_output: np.ndarray, cache: Cache
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of batchnorm w.r.t. input, gamma and beta."""
    normalized, inv_std, gamma, training = cache
    axes = (0, 2, 3)
    grad_gamma = (grad_output * normalized).sum(axis=axes)
    grad_beta = grad_output.sum(axis=axes)

    gamma_b = gamma.reshape(1, -1, 1, 1)
    if not training:
        # In eval mode the statistics are constants.
        grad_input = grad_output * gamma_b * inv_std
        return grad_input, grad_gamma, grad_beta

    count = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
    grad_norm = grad_output * gamma_b
    grad_input = (
        inv_std
        / count
        * (
            count * grad_norm
            - grad_norm.sum(axis=axes, keepdims=True)
            - normalized * (grad_norm * normalized).sum(axis=axes, keepdims=True)
        )
    )
    return grad_input, grad_gamma, grad_beta


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d_forward(
    inputs: np.ndarray, kernel_size: int, stride: Optional[int] = None, padding: int = 0
) -> Tuple[np.ndarray, Cache]:
    """Max pooling over square windows.

    Padding positions are filled with ``-inf`` so that they never win the
    maximum, matching the semantics of ``torch.nn.MaxPool2d``.
    """
    stride = stride or kernel_size
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)

    padded = inputs
    if padding > 0:
        padded = np.pad(
            inputs,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=-np.inf,
        )
    padded_shape = padded.shape
    reshaped = padded.reshape(batch * channels, 1, padded_shape[2], padded_shape[3])
    columns = im2col(reshaped, (kernel_size, kernel_size), stride, padding=0)
    argmax = columns.argmax(axis=1)
    output = columns[np.arange(columns.shape[0]), argmax]
    output = output.reshape(batch, channels, out_h, out_w)
    cache = (argmax, columns.shape, inputs.shape, padded_shape, kernel_size, stride, padding)
    return output, cache


def max_pool2d_backward(grad_output: np.ndarray, cache: Cache) -> np.ndarray:
    argmax, columns_shape, input_shape, padded_shape, kernel_size, stride, padding = cache
    batch, channels, height, width = input_shape
    grad_columns = np.zeros(columns_shape, dtype=grad_output.dtype)
    grad_flat = grad_output.reshape(-1)
    grad_columns[np.arange(columns_shape[0]), argmax] = grad_flat
    grad_padded = col2im(
        grad_columns,
        (batch * channels, 1, padded_shape[2], padded_shape[3]),
        (kernel_size, kernel_size),
        stride,
        padding=0,
    ).reshape(padded_shape)
    if padding > 0:
        grad_padded = grad_padded[:, :, padding:padding + height, padding:padding + width]
    return grad_padded


def avg_pool2d_forward(
    inputs: np.ndarray, kernel_size: int, stride: Optional[int] = None, padding: int = 0
) -> Tuple[np.ndarray, Cache]:
    """Average pooling over square windows."""
    stride = stride or kernel_size
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)
    reshaped = inputs.reshape(batch * channels, 1, height, width)
    columns = im2col(reshaped, (kernel_size, kernel_size), stride, padding)
    output = columns.mean(axis=1).reshape(batch, channels, out_h, out_w)
    cache = (columns.shape, inputs.shape, kernel_size, stride, padding)
    return output, cache


def avg_pool2d_backward(grad_output: np.ndarray, cache: Cache) -> np.ndarray:
    columns_shape, input_shape, kernel_size, stride, padding = cache
    batch, channels, height, width = input_shape
    window = kernel_size * kernel_size
    grad_columns = np.repeat(
        grad_output.reshape(-1, 1) / window, window, axis=1
    ).astype(grad_output.dtype)
    grad_reshaped = col2im(
        grad_columns,
        (batch * channels, 1, height, width),
        (kernel_size, kernel_size),
        stride,
        padding,
    )
    return grad_reshaped.reshape(input_shape)


def global_avg_pool_forward(inputs: np.ndarray) -> Tuple[np.ndarray, Cache]:
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""
    batch, channels, height, width = inputs.shape
    output = inputs.mean(axis=(2, 3))
    return output, (inputs.shape,)


def global_avg_pool_backward(grad_output: np.ndarray, cache: Cache) -> np.ndarray:
    (input_shape,) = cache
    _, _, height, width = input_shape
    scale = 1.0 / (height * width)
    return np.broadcast_to(
        grad_output[:, :, None, None] * scale, input_shape
    ).astype(grad_output.dtype, copy=True)


# ---------------------------------------------------------------------------
# Softmax / cross entropy
# ---------------------------------------------------------------------------

def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last dimension."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last dimension."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def cross_entropy_forward(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, Cache]:
    """Mean cross-entropy loss for integer class targets."""
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets shape {targets.shape} does not match logits batch {logits.shape[0]}"
        )
    log_probs = log_softmax(logits)
    batch = logits.shape[0]
    loss = -log_probs[np.arange(batch), targets].mean()
    cache = (log_probs, targets)
    return float(loss), cache


def cross_entropy_backward(cache: Cache) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    log_probs, targets = cache
    batch = log_probs.shape[0]
    grad = np.exp(log_probs)
    grad[np.arange(batch), targets] -= 1.0
    return grad / batch
