"""im2col / col2im transforms used to express convolution as matrix multiply.

Layout conventions (NCHW throughout the library):

* images: ``(batch, channels, height, width)``
* im2col output: ``(batch * out_h * out_w, channels * kernel_h * kernel_w)``

The column matrix rows are ordered batch-major, then output row, then
output column, which matches the reshape used by
:func:`repro.tensor.functional.conv2d_forward`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"Convolution output size is non-positive: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def _check_image(images: np.ndarray) -> None:
    if images.ndim != 4:
        raise ShapeError(f"Expected a 4-D NCHW tensor, got shape {images.shape}")


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Unfold image patches into a 2-D column matrix.

    Parameters
    ----------
    images:
        Input of shape ``(N, C, H, W)``.
    kernel_size:
        ``(kernel_h, kernel_w)``.
    stride, padding:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    ndarray of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    _check_image(images)
    batch, channels, height, width = images.shape
    kernel_h, kernel_w = kernel_size
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    if padding > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w)
    stride_n, stride_c, stride_h, stride_w = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
        strides=(
            stride_n,
            stride_c,
            stride_h * stride,
            stride_w * stride,
            stride_h,
            stride_w,
        ),
        writeable=False,
    )
    # -> (N, out_h, out_w, C, kernel_h, kernel_w) -> flatten
    columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )
    return np.ascontiguousarray(columns)


def col2im(
    columns: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold a column matrix back into an image, summing overlapping patches.

    This is the adjoint of :func:`im2col` and is used for the gradient with
    respect to the convolution input.
    """
    batch, channels, height, width = image_shape
    kernel_h, kernel_w = kernel_size
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    expected_rows = batch * out_h * out_w
    expected_cols = channels * kernel_h * kernel_w
    if columns.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected columns of shape {(expected_rows, expected_cols)}, "
            f"got {columns.shape}"
        )

    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    images = np.zeros((batch, channels, padded_h, padded_w), dtype=columns.dtype)

    patches = columns.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    patches = patches.transpose(0, 3, 1, 2, 4, 5)  # (N, C, out_h, out_w, kh, kw)

    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            images[:, :, row:row_end:stride, col:col_end:stride] += patches[:, :, :, :, row, col]

    if padding > 0:
        images = images[:, :, padding:padding + height, padding:padding + width]
    return images
