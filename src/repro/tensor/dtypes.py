"""Floating-point precision used by the compute framework.

All parameters, activations and gradients use :data:`FLOAT_DTYPE`
(single precision).  The attack/defense logic itself operates on int8
payloads and is unaffected by this choice; single precision roughly
halves memory traffic and doubles throughput on the NumPy substrate.
"""

import numpy as np

FLOAT_DTYPE = np.float32
