"""Two's-complement bit manipulation for int8 weight tensors.

Bit numbering follows the usual convention: bit 0 is the least significant
bit and bit 7 (:data:`MSB_POSITION`) is the most significant bit, which in
two's complement is the sign bit with weight ``-128``.  The Progressive
Bit-Flip Attack overwhelmingly targets this bit (Table I of the paper), so
the RADAR checksum is designed around protecting it.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from repro.errors import QuantizationError

INT8_BITS = 8
MSB_POSITION = 7

ArrayLike = Union[np.ndarray, Iterable[int], int]


def _as_int8(values: ArrayLike) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype != np.int8:
        if not np.issubdtype(array.dtype, np.integer):
            raise QuantizationError(
                f"Expected an integer array for bit operations, got dtype {array.dtype}"
            )
        if array.size and (array.max(initial=-128) > 127 or array.min(initial=127) < -128):
            raise QuantizationError("Values outside the int8 range [-128, 127]")
        array = array.astype(np.int8)
    return array


def int8_to_uint8(values: ArrayLike) -> np.ndarray:
    """Reinterpret int8 values as their two's-complement uint8 bit pattern."""
    return _as_int8(values).view(np.uint8).copy()


def uint8_to_int8(values: ArrayLike) -> np.ndarray:
    """Reinterpret uint8 bit patterns as signed int8 values."""
    array = np.asarray(values)
    if array.dtype != np.uint8:
        array = array.astype(np.uint8)
    return array.view(np.int8).copy()


def int8_to_bits(values: ArrayLike) -> np.ndarray:
    """Expand int8 values into a bit matrix of shape ``values.shape + (8,)``.

    ``result[..., k]`` is bit ``k`` (LSB first), so ``result[..., 7]`` is the
    sign bit.
    """
    unsigned = int8_to_uint8(values)
    shifts = np.arange(INT8_BITS, dtype=np.uint8)
    return ((unsigned[..., None] >> shifts) & 1).astype(np.uint8)


def bits_to_int8(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`int8_to_bits`."""
    bits = np.asarray(bits)
    if bits.shape[-1] != INT8_BITS:
        raise QuantizationError(
            f"Last dimension must be {INT8_BITS} bits, got shape {bits.shape}"
        )
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise QuantizationError("Bit matrix must contain only 0s and 1s")
    weights = (1 << np.arange(INT8_BITS, dtype=np.uint16))
    unsigned = (bits.astype(np.uint16) * weights).sum(axis=-1).astype(np.uint8)
    return uint8_to_int8(unsigned)


def get_bit(values: ArrayLike, bit_position: int) -> np.ndarray:
    """Return bit ``bit_position`` of each value (0 or 1)."""
    _check_bit_position(bit_position)
    return ((int8_to_uint8(values) >> bit_position) & 1).astype(np.uint8)


def set_bit(values: ArrayLike, bit_position: int, bit_value: int) -> np.ndarray:
    """Return a copy of ``values`` with bit ``bit_position`` forced to ``bit_value``."""
    _check_bit_position(bit_position)
    if bit_value not in (0, 1):
        raise QuantizationError(f"bit_value must be 0 or 1, got {bit_value}")
    unsigned = int8_to_uint8(values)
    mask = np.uint8(1 << bit_position)
    if bit_value:
        unsigned |= mask
    else:
        unsigned &= np.uint8(~mask & 0xFF)
    return uint8_to_int8(unsigned)


def flip_bit_scalar(value: int, bit_position: int) -> int:
    """Flip one bit of a single int8 value and return the new int8 value."""
    _check_bit_position(bit_position)
    unsigned = np.uint8(np.int8(value).view(np.uint8)) ^ np.uint8(1 << bit_position)
    return int(unsigned.view(np.int8))


def flip_bits(
    values: ArrayLike,
    flat_indices: ArrayLike,
    bit_positions: ArrayLike,
) -> np.ndarray:
    """Flip bits at ``(flat_index, bit_position)`` pairs in a copy of ``values``.

    ``values`` may have any shape; ``flat_indices`` index into the flattened
    array.  Duplicate ``(index, bit)`` pairs cancel (an XOR applied twice),
    exactly as physical double flips would.
    """
    array = _as_int8(values).copy()
    flat = array.reshape(-1)
    unsigned = flat.view(np.uint8)
    indices = np.atleast_1d(np.asarray(flat_indices, dtype=np.int64))
    positions = np.atleast_1d(np.asarray(bit_positions, dtype=np.int64))
    if indices.shape != positions.shape:
        raise QuantizationError(
            f"flat_indices shape {indices.shape} != bit_positions shape {positions.shape}"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= flat.size):
        raise QuantizationError("flat index out of range")
    if positions.size and (positions.min() < 0 or positions.max() >= INT8_BITS):
        raise QuantizationError("bit position out of range")
    for index, position in zip(indices, positions):
        unsigned[index] ^= np.uint8(1 << position)
    return array


def count_differing_bits(original: ArrayLike, corrupted: ArrayLike) -> int:
    """Number of bit positions at which two int8 tensors differ (Hamming distance)."""
    a = int8_to_uint8(original)
    b = int8_to_uint8(corrupted)
    if a.shape != b.shape:
        raise QuantizationError(f"Shape mismatch: {a.shape} vs {b.shape}")
    xor = np.bitwise_xor(a, b)
    return int(np.unpackbits(xor).sum())


def _check_bit_position(bit_position: int) -> None:
    if not 0 <= bit_position < INT8_BITS:
        raise QuantizationError(
            f"bit position must be in [0, {INT8_BITS - 1}], got {bit_position}"
        )


def bit_flip_delta(values: ArrayLike, bit_position: int) -> np.ndarray:
    """Signed change in integer value caused by flipping ``bit_position``.

    For bit ``k < 7`` the change is ``+2^k`` if the bit is currently 0 and
    ``-2^k`` if it is 1.  For the sign bit the weight is ``-128``, so the
    change is ``-128`` when flipping 0→1 and ``+128`` when flipping 1→0.
    This is the quantity the PBFA gradient ranking multiplies against
    ``dL/dw`` to estimate the loss increase of a candidate flip.
    """
    _check_bit_position(bit_position)
    bit = get_bit(values, bit_position).astype(np.int32)
    magnitude = 1 << bit_position
    direction = 1 - 2 * bit  # +1 when bit is 0, -1 when bit is 1
    if bit_position == MSB_POSITION:
        direction = -direction
    return direction * magnitude
