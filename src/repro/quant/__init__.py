"""8-bit weight quantization and bit-level manipulation utilities.

The threat model of the paper assumes DNNs with 8-bit quantized weights
stored in DRAM.  This package provides:

* :mod:`repro.quant.quantizer` — symmetric per-layer int8 quantization.
* :mod:`repro.quant.bitops` — two's-complement bit access/flip utilities
  used both by the attacks (to flip bits) and by RADAR (to reason about
  MSBs and checksums).
* :mod:`repro.quant.layers` — quantized ``Conv2d`` / ``Linear`` layers
  whose integer weight tensors are the attack surface.
"""

from repro.quant.quantizer import (
    QuantParams,
    dequantize,
    quantize_symmetric,
)
from repro.quant.bitops import (
    INT8_BITS,
    MSB_POSITION,
    bit_flip_delta,
    bits_to_int8,
    count_differing_bits,
    flip_bit_scalar,
    flip_bits,
    get_bit,
    int8_to_bits,
    int8_to_uint8,
    set_bit,
    uint8_to_int8,
)
from repro.quant.layers import (
    QuantConv2d,
    QuantLinear,
    model_qweight_state,
    quantize_model,
    quantized_layers,
    restore_qweight_state,
)

__all__ = [
    "QuantParams",
    "quantize_symmetric",
    "dequantize",
    "INT8_BITS",
    "MSB_POSITION",
    "int8_to_bits",
    "bits_to_int8",
    "int8_to_uint8",
    "uint8_to_int8",
    "get_bit",
    "set_bit",
    "flip_bits",
    "flip_bit_scalar",
    "count_differing_bits",
    "bit_flip_delta",
    "QuantConv2d",
    "QuantLinear",
    "quantize_model",
    "quantized_layers",
    "model_qweight_state",
    "restore_qweight_state",
]
