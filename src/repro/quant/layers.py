"""Quantized convolution and linear layers.

A quantized layer keeps its weights as an int8 tensor plus a per-layer
scale.  The int8 tensor is exactly the payload that would be stored in
DRAM, so it is what the attacks corrupt and what RADAR computes its
checksums over.  The forward/backward math is inherited from the float
layers: the effective weight used for compute is ``int8 * scale``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.quantizer import QuantParams, dequantize, quantize_symmetric


class _QuantizedWeightMixin:
    """Shared quantized-weight behaviour for conv and linear layers."""

    def _init_quant_state(self) -> None:
        self.qweight: Optional[np.ndarray] = None
        self.quant_params: Optional[QuantParams] = None

    # -- quantization lifecycle --------------------------------------------
    @property
    def is_quantized(self) -> bool:
        return self.qweight is not None

    def quantize(self) -> None:
        """Freeze the current float weight into the int8 + scale representation."""
        quantized, params = quantize_symmetric(self.weight.data)
        self.qweight = quantized
        self.quant_params = params

    def dequantize_to_float(self) -> None:
        """Fold the (possibly corrupted) int8 weights back into the float weight."""
        self._require_quantized()
        self.weight.data = dequantize(self.qweight, self.quant_params)

    def set_qweight(self, qweight: np.ndarray) -> None:
        """Replace the stored int8 weights (used by attacks and recovery)."""
        self._require_quantized()
        qweight = np.asarray(qweight)
        if qweight.dtype != np.int8:
            raise QuantizationError(f"qweight must be int8, got {qweight.dtype}")
        if qweight.shape != self.weight.data.shape:
            raise QuantizationError(
                f"qweight shape {qweight.shape} does not match weight shape {self.weight.data.shape}"
            )
        self.qweight = qweight.copy()

    def effective_weight(self) -> np.ndarray:
        """Dequantized weight used by forward/backward once quantized."""
        if self.qweight is None:
            return self.weight.data
        return dequantize(self.qweight, self.quant_params)

    def weight_gradient_int(self) -> np.ndarray:
        """Gradient of the loss w.r.t. the *integer* weight values.

        The chain rule through ``w_eff = q * scale`` gives
        ``dL/dq = dL/dw_eff * scale``.  Requires a backward pass to have
        populated ``weight.grad``.
        """
        self._require_quantized()
        if self.weight.grad is None:
            raise QuantizationError("weight gradient not available; run backward first")
        return self.weight.grad * self.quant_params.scale

    def _require_quantized(self) -> None:
        if self.qweight is None:
            raise QuantizationError(
                f"{type(self).__name__} is not quantized yet; call quantize() first"
            )


class QuantConv2d(_QuantizedWeightMixin, Conv2d):
    """8-bit weight-quantized 2-D convolution."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_quant_state()


class QuantLinear(_QuantizedWeightMixin, Linear):
    """8-bit weight-quantized fully connected layer."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_quant_state()


def quantized_layers(model: Module) -> List[Tuple[str, Module]]:
    """All quantizable (conv / linear) layers of ``model`` in definition order.

    Returns ``(name, layer)`` pairs for every :class:`QuantConv2d` and
    :class:`QuantLinear` in the module tree.  The ordering is stable and is
    the canonical layer indexing used by attack profiles and signature
    stores.
    """
    layers = []
    for name, module in model.named_modules():
        if isinstance(module, (QuantConv2d, QuantLinear)):
            layers.append((name, module))
    return layers


def quantize_model(model: Module) -> Module:
    """Quantize every quantizable layer of ``model`` in place and return it."""
    layers = quantized_layers(model)
    if not layers:
        raise QuantizationError(
            "Model contains no QuantConv2d/QuantLinear layers; build it with quantized layers"
        )
    for _, layer in layers:
        layer.quantize()
    return model


def model_qweight_state(model: Module) -> Dict[str, np.ndarray]:
    """Snapshot of all int8 weight tensors, keyed by layer name (copies)."""
    return {name: layer.qweight.copy() for name, layer in quantized_layers(model) if layer.is_quantized}


def restore_qweight_state(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Restore int8 weight tensors previously captured by :func:`model_qweight_state`."""
    layer_map = dict(quantized_layers(model))
    for name, qweight in state.items():
        if name not in layer_map:
            raise QuantizationError(f"Layer {name!r} not found in model")
        layer_map[name].set_qweight(qweight)
