"""Symmetric per-layer int8 weight quantization.

Follows the quantizer used by the Bit-Flip Attack reference implementation
(Rakin et al., ICCV 2019): weights of a layer are mapped to signed 8-bit
integers with a single power-free scale ``s = max(|w|) / 127`` so that

``w_int = clip(round(w / s), -127, 127)`` and ``w ≈ w_int * s``.

The value ``-128`` is representable by the storage format (and can be
*produced by an attack* flipping the sign bit of ``0``), but the quantizer
itself never emits it, matching the symmetric-range convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.tensor.dtypes import FLOAT_DTYPE

from repro.errors import QuantizationError

QMAX = 127
QMIN = -127


@dataclass(frozen=True)
class QuantParams:
    """Quantization parameters for one tensor (per-layer symmetric)."""

    scale: float
    num_bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise QuantizationError(f"Quantization scale must be positive, got {self.scale}")
        if self.num_bits != 8:
            raise QuantizationError("Only 8-bit quantization is supported")


def quantize_symmetric(weights: np.ndarray) -> Tuple[np.ndarray, QuantParams]:
    """Quantize a float tensor to int8 with a symmetric per-tensor scale.

    Returns ``(int8_values, params)``.  An all-zero tensor gets scale 1.0.
    """
    weights = np.asarray(weights, dtype=FLOAT_DTYPE)
    max_abs = float(np.abs(weights).max()) if weights.size else 0.0
    scale = max_abs / QMAX if max_abs > 0 else 1.0
    params = QuantParams(scale=scale)
    quantized = np.clip(np.round(weights / scale), QMIN, QMAX).astype(np.int8)
    return quantized, params


def dequantize(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map int8 values back to floats using the stored scale."""
    values = np.asarray(values)
    if values.dtype != np.int8:
        raise QuantizationError(f"dequantize expects int8 values, got dtype {values.dtype}")
    return values.astype(FLOAT_DTYPE) * params.scale


def quantization_error(weights: np.ndarray) -> float:
    """Root-mean-square error introduced by quantizing ``weights``."""
    quantized, params = quantize_symmetric(weights)
    restored = dequantize(quantized, params)
    weights = np.asarray(weights, dtype=FLOAT_DTYPE)
    if weights.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((weights - restored) ** 2)))
