"""Progressive Bit-Flip Attack (PBFA).

Reimplementation of the attack of Rakin et al., "Bit-Flip Attack: Crushing
Neural Network with Progressive Bit Search" (ICCV 2019), which is the
threat the RADAR paper defends against.

The attack alternates two searches, repeated once per injected bit flip:

1. *In-layer search*: for every quantized layer, use the gradient of the
   loss with respect to the integer weights to score every candidate
   ``(weight, bit)`` flip by its first-order loss increase
   ``dL/dq * Δq(bit)`` and keep the best candidate of the layer.
2. *Cross-layer search*: apply each of the top layer candidates in turn,
   measure the true loss on the attack batch, keep the flip that produces
   the largest loss, and commit it.

The attacker uses a small batch of data with a distribution similar to the
training data (white-box assumption of the paper's threat model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.bitflip import apply_bit_flips, make_bit_flip
from repro.attacks.profiles import AttackProfile, BitFlip
from repro.errors import AttackError
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.quant.bitops import INT8_BITS, bit_flip_delta
from repro.quant.layers import quantized_layers
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

logger = get_logger("attacks.pbfa")


@dataclass
class PbfaConfig:
    """Configuration of the progressive bit search.

    Attributes
    ----------
    num_flips:
        Number of bit flips to inject (``N_BF`` in the paper; 10 by default,
        matching the paper's main experiments).
    attack_batch_size:
        Number of samples in the attacker's data batch.
    candidate_layers:
        Cross-layer search width: only the best candidates from this many
        layers (ranked by the in-layer score) are evaluated with a true
        forward pass.  The original attack evaluates every layer; shrinking
        this is purely a compute optimization and rarely changes the chosen
        bit because the in-layer score ranks layers well.
    bit_positions:
        Bit positions the attacker is allowed to flip.  The default allows
        all 8 bits (the attack then almost always picks the MSB, which is
        the paper's Observation 1).  Restricting this to ``(6,)`` gives the
        MSB-avoiding attacker of Section VIII.
    exclude:
        Optional set of ``(layer_name, flat_index, bit_position)`` triples
        the attacker must not flip (used to avoid re-flipping).
    seed:
        Seed for the attack-batch sampling.
    """

    num_flips: int = 10
    attack_batch_size: int = 16
    candidate_layers: int = 5
    bit_positions: Tuple[int, ...] = tuple(range(INT8_BITS))
    seed: int = 0
    allow_repeated_bits: bool = False

    def __post_init__(self) -> None:
        if self.num_flips <= 0:
            raise AttackError("num_flips must be positive")
        if not self.bit_positions:
            raise AttackError("bit_positions must not be empty")
        if any(not 0 <= b < INT8_BITS for b in self.bit_positions):
            raise AttackError(f"bit positions must be in [0, 7], got {self.bit_positions}")


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    profile: AttackProfile
    loss_before: float
    loss_after: float
    losses: List[float] = field(default_factory=list)

    @property
    def num_flips(self) -> int:
        return len(self.profile)


class ProgressiveBitFlipAttack:
    """The PBFA attacker (white-box, gradient-guided progressive bit search)."""

    def __init__(self, config: Optional[PbfaConfig] = None) -> None:
        self.config = config or PbfaConfig()

    # -- public API ----------------------------------------------------------
    def run(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        model_name: str = "",
    ) -> AttackResult:
        """Run the attack in place on ``model`` using an attack batch drawn
        from ``images`` / ``labels``.

        The model's int8 weights are modified; use
        :func:`repro.attacks.bitflip.snapshot_qweights` /
        ``restore_qweights`` (or ``revert_profile``) to undo.
        """
        config = self.config
        layers = quantized_layers(model)
        if not layers:
            raise AttackError("Model has no quantized layers")
        for name, layer in layers:
            if not layer.is_quantized:
                raise AttackError(f"Layer {name!r} must be quantized before attacking")

        batch_images, batch_labels = self._sample_batch(images, labels)
        criterion = CrossEntropyLoss()
        model.eval()

        loss_before = self._loss(model, criterion, batch_images, batch_labels)
        losses = [loss_before]
        profile = AttackProfile(
            model_name=model_name, attack_name="pbfa", seed=config.seed
        )
        flipped: set = set()

        for flip_round in range(config.num_flips):
            candidates = self._rank_candidates(
                model, criterion, batch_images, batch_labels, layers, flipped
            )
            if not candidates:
                logger.warning("PBFA ran out of candidates after %d flips", flip_round)
                break
            best_flip, best_loss = self._cross_layer_search(
                model, criterion, batch_images, batch_labels, candidates
            )
            apply_bit_flips(model, [best_flip])
            flipped.add((best_flip.layer_name, best_flip.flat_index, best_flip.bit_position))
            profile.flips.append(best_flip)
            losses.append(best_loss)
            logger.debug(
                "flip %d: %s[%d] bit %d (%s), loss %.4f",
                flip_round + 1,
                best_flip.layer_name,
                best_flip.flat_index,
                best_flip.bit_position,
                best_flip.direction.value,
                best_loss,
            )

        profile.loss_trajectory = losses
        return AttackResult(
            profile=profile, loss_before=loss_before, loss_after=losses[-1], losses=losses
        )

    # -- internals -----------------------------------------------------------
    def _sample_batch(
        self, images: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        config = self.config
        count = images.shape[0]
        if count == 0:
            raise AttackError("Attack dataset is empty")
        batch = min(config.attack_batch_size, count)
        rng = new_rng(("pbfa-batch", config.seed))
        indices = rng.choice(count, size=batch, replace=False)
        return images[indices], labels[indices]

    @staticmethod
    def _loss(
        model: Module, criterion: CrossEntropyLoss, images: np.ndarray, labels: np.ndarray
    ) -> float:
        logits = model(images)
        return criterion(logits, labels)

    def _backward_int_gradients(
        self,
        model: Module,
        criterion: CrossEntropyLoss,
        images: np.ndarray,
        labels: np.ndarray,
        layers: Sequence[Tuple[str, Module]],
    ) -> Dict[str, np.ndarray]:
        """Gradient of the loss w.r.t. each layer's integer weights."""
        model.zero_grad()
        logits = model(images)
        criterion(logits, labels)
        model.backward(criterion.backward())
        gradients = {}
        for name, layer in layers:
            gradients[name] = layer.weight_gradient_int().reshape(-1)
        return gradients

    def _rank_candidates(
        self,
        model: Module,
        criterion: CrossEntropyLoss,
        images: np.ndarray,
        labels: np.ndarray,
        layers: Sequence[Tuple[str, Module]],
        flipped: set,
    ) -> List[Tuple[float, BitFlip]]:
        """In-layer search: best candidate flip per layer, ranked globally."""
        config = self.config
        gradients = self._backward_int_gradients(model, criterion, images, labels, layers)
        per_layer_best: List[Tuple[float, BitFlip]] = []

        for name, layer in layers:
            grad = gradients[name]
            qweight_flat = layer.qweight.reshape(-1)
            best_score = -np.inf
            best_pair = None
            # At most len(flipped) candidates per (layer, bit) can be excluded,
            # so examining the top (len(flipped) + 1) scores always yields the
            # best admissible candidate without a full sort.
            top_k = min(len(flipped) + 1, qweight_flat.size)
            for bit_position in config.bit_positions:
                delta = bit_flip_delta(qweight_flat, bit_position).astype(np.float64)
                scores = grad * delta
                top = np.argpartition(scores, -top_k)[-top_k:]
                top = top[np.argsort(scores[top])[::-1]]
                for index in top:
                    key = (name, int(index), bit_position)
                    if not config.allow_repeated_bits and key in flipped:
                        continue
                    if scores[index] > best_score:
                        best_score = float(scores[index])
                        best_pair = (int(index), bit_position)
                    break
            if best_pair is None:
                continue
            flip = make_bit_flip(name, layer.qweight, best_pair[0], best_pair[1])
            per_layer_best.append((best_score, flip))

        per_layer_best.sort(key=lambda item: item[0], reverse=True)
        return per_layer_best[: config.candidate_layers]

    def _cross_layer_search(
        self,
        model: Module,
        criterion: CrossEntropyLoss,
        images: np.ndarray,
        labels: np.ndarray,
        candidates: List[Tuple[float, BitFlip]],
    ) -> Tuple[BitFlip, float]:
        """Evaluate candidate flips with true forward passes and pick the worst."""
        best_flip = None
        best_loss = -np.inf
        for _, flip in candidates:
            apply_bit_flips(model, [flip])
            loss = self._loss(model, criterion, images, labels)
            apply_bit_flips(model, [flip])  # revert (XOR)
            if loss > best_loss:
                best_loss = loss
                best_flip = flip
        if best_flip is None:
            raise AttackError("Cross-layer search received no candidates")
        return best_flip, float(best_loss)
