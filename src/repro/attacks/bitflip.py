"""Applying and reverting bit flips on a quantized model.

These helpers are the "hardware" half of the threat model: given a
vulnerable-bit profile they corrupt the int8 weight payload exactly as a
rowhammer attack on the DRAM image would (see also
:mod:`repro.memsim.rowhammer` for the memory-level view).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.attacks.profiles import AttackProfile, BitFlip, FlipDirection
from repro.errors import AttackError
from repro.nn.module import Module
from repro.quant.bitops import flip_bit_scalar, get_bit
from repro.quant.layers import quantized_layers


def _layer_map(model: Module) -> Dict[str, object]:
    layers = dict(quantized_layers(model))
    if not layers:
        raise AttackError("Model has no quantized layers to attack")
    for name, layer in layers.items():
        if not layer.is_quantized:
            raise AttackError(
                f"Layer {name!r} is not quantized; call repro.quant.quantize_model first"
            )
    return layers


def make_bit_flip(layer_name: str, qweight: np.ndarray, flat_index: int, bit_position: int) -> BitFlip:
    """Construct the :class:`BitFlip` record for flipping one bit of ``qweight``."""
    flat = qweight.reshape(-1)
    value_before = int(flat[flat_index])
    value_after = flip_bit_scalar(value_before, bit_position)
    current_bit = int(get_bit(np.int8(value_before), bit_position))
    direction = FlipDirection.ZERO_TO_ONE if current_bit == 0 else FlipDirection.ONE_TO_ZERO
    return BitFlip(
        layer_name=layer_name,
        flat_index=int(flat_index),
        bit_position=int(bit_position),
        direction=direction,
        value_before=value_before,
        value_after=value_after,
    )


def apply_bit_flips(model: Module, flips: Iterable[BitFlip]) -> None:
    """Apply bit flips in place to the model's int8 weights.

    Applying the same flip twice cancels it (XOR semantics), which is also
    how :func:`revert_profile` works.
    """
    layers = _layer_map(model)
    for flip in flips:
        if flip.layer_name not in layers:
            raise AttackError(f"Unknown layer {flip.layer_name!r} in bit-flip record")
        layer = layers[flip.layer_name]
        flat = layer.qweight.reshape(-1)
        if not 0 <= flip.flat_index < flat.size:
            raise AttackError(
                f"Flat index {flip.flat_index} out of range for layer {flip.layer_name!r}"
            )
        flat[flip.flat_index] = flip_bit_scalar(int(flat[flip.flat_index]), flip.bit_position)


def apply_profile(model: Module, profile: AttackProfile) -> None:
    """Apply every flip of ``profile`` to ``model``."""
    apply_bit_flips(model, profile.flips)


def revert_profile(model: Module, profile: AttackProfile) -> None:
    """Undo a previously applied profile (bit flips are involutions)."""
    apply_bit_flips(model, profile.flips)


def snapshot_qweights(model: Module) -> Dict[str, np.ndarray]:
    """Copy of every quantized layer's int8 weights, keyed by layer name."""
    return {name: layer.qweight.copy() for name, layer in _layer_map(model).items()}


def restore_qweights(model: Module, snapshot: Dict[str, np.ndarray]) -> None:
    """Restore int8 weights from a snapshot taken by :func:`snapshot_qweights`."""
    layers = _layer_map(model)
    for name, qweight in snapshot.items():
        if name not in layers:
            raise AttackError(f"Snapshot contains unknown layer {name!r}")
        layers[name].set_qweight(qweight)


def flips_per_layer(flips: Sequence[BitFlip]) -> Dict[str, List[BitFlip]]:
    """Group bit flips by layer name, preserving order."""
    grouped: Dict[str, List[BitFlip]] = {}
    for flip in flips:
        grouped.setdefault(flip.layer_name, []).append(flip)
    return grouped
