"""Scripted adversaries: attack kinds × injection cadences for campaigns.

The attack classes in this package answer *what* an adversary flips
(random MSBs, PBFA's progressive bit search, the knowledgeable evasions).
An operational SLA study additionally needs *when*: a real rowhammer
campaign is a temporal pattern — one burst of flips, or a trickle spread
over many serving ticks.  This module composes the two:

* :class:`AttackCadence` — the temporal script: at which engine ticks the
  adversary fires a *salvo* (``burst`` fires once, ``trickle`` fires
  every ``interval`` ticks for ``salvos`` rounds);
* :class:`ScriptedAdversary` — one attack kind bound to a cadence.
  :meth:`ScriptedAdversary.maybe_attack` is called once per serving tick
  by the campaign driver (:mod:`repro.experiments.campaign`) and mounts a
  salvo in place when the cadence says so, returning the
  :class:`~repro.attacks.profiles.AttackProfile` of what was flipped —
  the ground truth the telemetry layer's detection-latency clock starts
  from.

Salvo seeds derive from the adversary seed plus the salvo index, so a
trickle's rounds flip different bits while the whole campaign stays
deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attacks.knowledgeable import LowBitAttack, PairedFlipAttack, PairedFlipConfig
from repro.attacks.pbfa import PbfaConfig, ProgressiveBitFlipAttack
from repro.attacks.profiles import AttackProfile
from repro.attacks.random_attack import RandomBitFlipAttack, RandomFlipConfig
from repro.errors import AttackError
from repro.nn.module import Module


@dataclass(frozen=True)
class AttackCadence:
    """When a scripted adversary fires, in 0-based serving-tick indices.

    Salvo *k* (``0 <= k < salvos``) fires immediately **before** tick
    ``start_tick + k * interval`` runs — matching the campaign driver's
    inject-then-tick loop, so a salvo at tick *t* is scannable during
    tick *t* itself.
    """

    start_tick: int = 2
    interval: int = 1
    salvos: int = 1

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise AttackError(f"start_tick must be >= 0, got {self.start_tick}")
        if self.interval < 1:
            raise AttackError(f"interval must be >= 1, got {self.interval}")
        if self.salvos < 1:
            raise AttackError(f"salvos must be >= 1, got {self.salvos}")

    @classmethod
    def burst(cls, at_tick: int = 2) -> "AttackCadence":
        """Everything at once: one salvo before ``at_tick``."""
        return cls(start_tick=at_tick, interval=1, salvos=1)

    @classmethod
    def trickle(
        cls, start_tick: int = 1, interval: int = 3, salvos: int = 3
    ) -> "AttackCadence":
        """Slow drip: one salvo every ``interval`` ticks, ``salvos`` times."""
        return cls(start_tick=start_tick, interval=interval, salvos=salvos)

    def fires_at(self, tick: int) -> bool:
        offset = tick - self.start_tick
        if offset < 0 or offset % self.interval:
            return False
        return offset // self.interval < self.salvos

    @property
    def last_tick(self) -> int:
        """Tick of the final salvo (campaigns size their window past it)."""
        return self.start_tick + (self.salvos - 1) * self.interval


class ScriptedAdversary(ABC):
    """One attack kind bound to an :class:`AttackCadence`.

    Stateful over one campaign run: tracks which salvo is next so trickle
    rounds draw distinct seeds.  Not reusable across runs — build a fresh
    adversary per scenario execution.
    """

    #: Short kind label reports use (subclasses override).
    kind = "scripted"

    def __init__(self, cadence: AttackCadence, seed: int = 0) -> None:
        self.cadence = cadence
        self.seed = int(seed)
        self._next_salvo = 0

    @property
    def salvos_fired(self) -> int:
        return self._next_salvo

    def maybe_attack(
        self, model: Module, tick: int, model_name: str = ""
    ) -> Optional[AttackProfile]:
        """Mount the next salvo in place if the cadence fires at ``tick``."""
        if not self.cadence.fires_at(tick):
            return None
        profile = self.attack(model, self.seed + self._next_salvo, model_name)
        self._next_salvo += 1
        return profile

    @abstractmethod
    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        """Mount one salvo in place and return what was flipped."""


class RandomFlipAdversary(ScriptedAdversary):
    """Random MSB flips — the paper's hardware-fault / weak-attacker model."""

    kind = "random"

    def __init__(
        self, cadence: AttackCadence, num_flips: int = 4, seed: int = 0
    ) -> None:
        super().__init__(cadence, seed=seed)
        self.num_flips = int(num_flips)

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        return RandomBitFlipAttack(
            RandomFlipConfig(num_flips=self.num_flips, msb_only=True, seed=salvo_seed)
        ).run(model, model_name)


class _DataDrivenAdversary(ScriptedAdversary):
    """Shared plumbing for adversaries that need an attack batch."""

    def __init__(
        self,
        cadence: AttackCadence,
        images: np.ndarray,
        labels: np.ndarray,
        seed: int = 0,
    ) -> None:
        super().__init__(cadence, seed=seed)
        if len(images) == 0 or len(images) != len(labels):
            raise AttackError(
                "scripted adversary needs a non-empty attack batch with "
                "matching images and labels"
            )
        self.images = images
        self.labels = labels


class PbfaAdversary(_DataDrivenAdversary):
    """The progressive bit-flip attack (the paper's primary threat)."""

    kind = "pbfa"

    def __init__(
        self,
        cadence: AttackCadence,
        images: np.ndarray,
        labels: np.ndarray,
        num_flips: int = 3,
        attack_batch_size: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(cadence, images, labels, seed=seed)
        self.num_flips = int(num_flips)
        self.attack_batch_size = int(attack_batch_size)

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        attack = ProgressiveBitFlipAttack(
            PbfaConfig(
                num_flips=self.num_flips,
                attack_batch_size=self.attack_batch_size,
                seed=salvo_seed,
            )
        )
        return attack.run(model, self.images, self.labels, model_name=model_name).profile


class PairedFlipAdversary(_DataDrivenAdversary):
    """Knowledgeable checksum-evader: PBFA plus compensating MSB flips."""

    kind = "paired"

    def __init__(
        self,
        cadence: AttackCadence,
        images: np.ndarray,
        labels: np.ndarray,
        num_flips: int = 2,
        assumed_group_size: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(cadence, images, labels, seed=seed)
        self.num_flips = int(num_flips)
        self.assumed_group_size = int(assumed_group_size)

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        attack = PairedFlipAttack(
            PairedFlipConfig(
                pbfa=PbfaConfig(num_flips=self.num_flips, seed=salvo_seed),
                assumed_group_size=self.assumed_group_size,
                seed=salvo_seed,
            )
        )
        return attack.run(model, self.images, self.labels, model_name=model_name).profile


class LowBitAdversary(_DataDrivenAdversary):
    """Knowledgeable MSB-avoider: PBFA restricted to sub-MSB positions.

    Campaigns pairing this adversary with a fleet should protect the
    victim with 3-bit signatures — the paper's Section VIII point is that
    2-bit signatures can miss sub-MSB flips while 3 bits catch them.
    """

    kind = "low-bit"

    def __init__(
        self,
        cadence: AttackCadence,
        images: np.ndarray,
        labels: np.ndarray,
        num_flips: int = 6,
        bit_positions: Tuple[int, ...] = (6,),
        seed: int = 0,
    ) -> None:
        super().__init__(cadence, images, labels, seed=seed)
        self.num_flips = int(num_flips)
        self.bit_positions = tuple(bit_positions)

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        attack = LowBitAttack(
            num_flips=self.num_flips,
            bit_positions=self.bit_positions,
            seed=salvo_seed,
        )
        return attack.run(model, self.images, self.labels, model_name=model_name).profile
