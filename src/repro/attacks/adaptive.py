"""Schedule-aware adversaries: attackers that adapt to the scan rotation.

The scripted adversaries of :mod:`repro.attacks.scripted` answer *what* to
flip and *when* in wall-clock terms, but they are blind to the defense: a
random MSB flip lands in a uniformly random shard of the victim's
:class:`~repro.core.scheduler.ScanScheduler`, so its expected detection
latency is about half a rotation.  This module models the stronger —
and, for a deterministic rotation, strictly worse — threat the paper's
guarantees must survive: an attacker that *observes* the scan schedule and
times its flips into the maximum-staleness window.

Observation model (Kerckhoffs): the attacker knows the defense's
configuration — shard count, shards per pass, the signature-group memory
layout (which rows live in which shard) — and can observe *which shards
each tick scanned* (e.g. through the DRAM row-activation side channel a
rowhammer attacker already has).  It does **not** know the defender's
secret signature key or, for the jittered defense, the planner's RNG seed.
Three escalating adversaries:

* :class:`RotationTracker` — learns each shard's scan period from the
  observed gaps and fires into the shard whose predicted next scan is
  furthest away.  Against a fixed round-robin rotation the prediction is
  exact, so every salvo achieves the worst-case detection latency (the
  full rotation bound) — measurably worse than the random attacker's
  half-rotation expectation.
* :class:`BudgetAwareAttacker` — additionally watches for the engine's
  ``budget_exhausted`` signal (observable as ticks in which the victim's
  scan slice stays empty) and strikes right after a starved tick, when
  exposure backlogs are growing and the stalest shard is even staler.
* :class:`OracleAttacker` — the calibration upper bound: it is handed the
  true planner state and simulates the scheduler forward, so it picks the
  provably last-scanned shard even under the jittered defense.  No
  realizable attacker does better; the gap between the oracle and the
  tracker under :class:`~repro.core.planner.JitteredPlanner` is exactly
  what the jitter bought.

The counter-move lives in :class:`~repro.core.planner.JitteredPlanner`:
seeded-random epoch permutations keep every shard's next scan uniform over
the next epoch, collapsing the tracker's edge back to the random
attacker's expectation while the rotation-aligned starvation bound (two
rotations, ``rotation_lag_multiplier``) keeps worst-case latency finite.
``experiments/campaign.py`` runs the full adversary × cadence × defense
matrix and ``results/campaign_matrix.json`` pins the measured margins.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.bitflip import apply_bit_flips, make_bit_flip
from repro.attacks.profiles import AttackProfile, BitFlip
from repro.attacks.scripted import AttackCadence, ScriptedAdversary
from repro.errors import AttackError
from repro.nn.module import Module
from repro.quant.bitops import MSB_POSITION


def flips_into_shard(
    model: Module,
    scheduler,
    shard_index: int,
    num_flips: int,
    rng: np.random.Generator,
    bit_position: int = MSB_POSITION,
) -> List[BitFlip]:
    """Build ``num_flips`` bit flips aimed at one scheduler shard.

    Uses only layout knowledge the threat model grants the attacker: the
    shard's global signature rows and the group → weight-member mapping.
    Flip targets are drawn with ``rng`` over the shard's groups and their
    members, so repeated salvos spread across the shard.
    """
    if num_flips < 1:
        raise AttackError(f"num_flips must be >= 1, got {num_flips}")
    store = scheduler.store
    rows = scheduler.shard_rows(shard_index)
    groups_by_layer = scheduler.fused.rows_to_layer_groups(rows)
    candidates = [
        (layer_name, int(group))
        for layer_name in sorted(groups_by_layer)
        for group in groups_by_layer[layer_name]
    ]
    if not candidates:
        raise AttackError(f"shard {shard_index} maps to no signature groups")
    layers = {name: dict(_quantized(model))[name] for name in groups_by_layer}
    flips: List[BitFlip] = []
    picks = rng.integers(0, len(candidates), size=num_flips)
    for pick in picks:
        layer_name, group = candidates[int(pick)]
        members = store.layer(layer_name).layout.members_of(group)
        member = int(members[int(rng.integers(0, len(members)))])
        flips.append(
            make_bit_flip(
                layer_name, layers[layer_name].qweight, member, bit_position
            )
        )
    return flips


def _quantized(model: Module):
    from repro.quant.layers import quantized_layers

    return quantized_layers(model)


class AdaptiveAdversary(ScriptedAdversary):
    """Base class: a scripted cadence plus schedule observations.

    Adaptive adversaries need a live handle on the victim — the
    :class:`~repro.core.fleet.ManagedModel` — because reprotection swaps
    the victim's scheduler object; the handle is read on every salvo.
    Construction stays engine-free (``build_adversary`` parity with the
    scripted kinds); the campaign runner calls :meth:`bind` after the
    fleet exists and feeds :meth:`observe_scan` /
    :meth:`observe_event` from each tick's outcomes.
    """

    kind = "adaptive"

    def __init__(
        self, cadence: AttackCadence, num_flips: int = 4, seed: int = 0
    ) -> None:
        super().__init__(cadence, seed=seed)
        if num_flips < 1:
            raise AttackError(f"num_flips must be >= 1, got {num_flips}")
        self.num_flips = int(num_flips)
        self._managed = None
        self._tick = 0
        #: Last observed tick each shard was scanned at (the side channel).
        self._last_scanned: Dict[int, int] = {}
        #: Observed gaps between consecutive scans of each shard.
        self._gaps: Dict[int, List[int]] = {}

    # -- wiring ------------------------------------------------------------------
    def bind(self, managed) -> "AdaptiveAdversary":
        """Point the adversary at its victim (call once, post-registration)."""
        self._managed = managed
        return self

    @property
    def managed(self):
        if self._managed is None:
            raise AttackError(
                f"{type(self).__name__} must be bind()-bound to a managed "
                "model before it can observe or attack"
            )
        return self._managed

    @property
    def scheduler(self):
        """The victim's *current* scheduler (reprotection replaces it)."""
        return self.managed.scheduler

    @property
    def max_fire_delay_ticks(self) -> int:
        """Worst-case ticks this adversary defers salvos past its cadence.

        Campaign drivers add this to the serving window so a deferred
        salvo still has the full detection lag of coverage; most adaptive
        adversaries fire exactly on cadence (zero).
        """
        return 0

    # -- the side channel --------------------------------------------------------
    def observe_scan(self, tick: int, shard_indices: List[int]) -> None:
        """Record which shards the victim's tick ``tick`` scanned."""
        for shard in shard_indices:
            shard = int(shard)
            last = self._last_scanned.get(shard)
            if last is not None and tick > last:
                self._gaps.setdefault(shard, []).append(tick - last)
            self._last_scanned[shard] = tick

    def observe_event(self, event) -> None:
        """Engine lifecycle events (subclasses pick what they care about)."""

    # -- targeting ---------------------------------------------------------------
    def maybe_attack(
        self, model: Module, tick: int, model_name: str = ""
    ) -> Optional[AttackProfile]:
        self._tick = int(tick)
        return super().maybe_attack(model, tick, model_name)

    def _period(self, shard: int) -> int:
        """Estimated scan period of one shard (observed, else structural)."""
        gaps = self._gaps.get(shard)
        if gaps:
            return int(np.median(gaps))
        scheduler = self.scheduler
        return -(-scheduler.num_shards // scheduler.shards_per_pass)

    def _stalest_shard(self) -> int:
        """Shard whose *predicted next scan* is furthest in the future."""
        scheduler = self.scheduler
        if not self._last_scanned:
            return scheduler.num_shards - 1
        known = {
            shard: last
            for shard, last in self._last_scanned.items()
            if shard < scheduler.num_shards
        }
        never_seen = [
            shard
            for shard in range(scheduler.num_shards)
            if shard not in known
        ]
        if not known:
            return scheduler.num_shards - 1
        # A shard never observed scanned may be scanned any time — a known
        # just-scanned shard is the safer maximum-staleness bet.
        if never_seen and len(known) < scheduler.num_shards // 2:
            return never_seen[0]
        return max(
            known,
            key=lambda shard: (known[shard] + self._period(shard), known[shard], -shard),
        )

    def _mount(
        self, model: Module, shard: int, salvo_seed: int, model_name: str
    ) -> AttackProfile:
        rng = np.random.default_rng(salvo_seed)
        flips = flips_into_shard(
            model, self.scheduler, shard, self.num_flips, rng
        )
        apply_bit_flips(model, flips)
        return AttackProfile(
            flips=flips,
            model_name=model_name,
            attack_name=f"{self.kind}@shard{shard}",
            seed=salvo_seed,
        )


class RotationTracker(AdaptiveAdversary):
    """Learns the rotation from scan timing; fires into maximum staleness.

    Against :class:`~repro.core.planner.RoundRobinPlanner` the just-scanned
    shard is exactly one full rotation from its next scan, so the tracker's
    detection latency equals the worst-case bound on every salvo.  Against
    :class:`~repro.core.planner.JitteredPlanner` the prediction carries no
    information — the targeted shard's next scan is uniform over the next
    epoch — and the tracker degrades to the random attacker's expectation.
    """

    kind = "rotation"

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        return self._mount(model, self._stalest_shard(), salvo_seed, model_name)


class BudgetAwareAttacker(AdaptiveAdversary):
    """Strikes right after the engine starved the victim's scan budget.

    A tick whose budget share cannot afford even one shard scans nothing
    (the engine emits ``budget_exhausted``); every shard's exposure grows
    and the stalest shard gets one pass staler.  This attacker holds its
    salvos until it sees such a tick — its cadence's ``start_tick`` arms
    it, starvation triggers it — and then fires into the stalest shard.
    ``patience`` caps the wait: an armed salvo launches unconditionally
    ``patience`` ticks after arming, so a well-funded defense still gets
    attacked (and measured) rather than never.
    """

    kind = "budget"

    def __init__(
        self,
        cadence: AttackCadence,
        num_flips: int = 4,
        patience: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(cadence, num_flips=num_flips, seed=seed)
        if patience < 0:
            raise AttackError(f"patience must be >= 0, got {patience}")
        self.patience = int(patience)
        self._starved_ticks: List[int] = []
        self._armed_since: Optional[int] = None

    @property
    def max_fire_delay_ticks(self) -> int:
        """Every salvo may wait ``patience`` ticks armed before launching,
        and a deferred salvo pushes the arming of the next one out with it."""
        return self.cadence.salvos * (self.patience + 1)

    def observe_event(self, event) -> None:
        from repro.core.fleet import FleetEventType

        if (
            event.type is FleetEventType.BUDGET_EXHAUSTED
            and self._managed is not None
            and event.model == self.managed.name
        ):
            self._starved_ticks.append(int(event.tick))

    def maybe_attack(
        self, model: Module, tick: int, model_name: str = ""
    ) -> Optional[AttackProfile]:
        self._tick = int(tick)
        if self._next_salvo >= self.cadence.salvos or tick < self.cadence.start_tick:
            return None
        if self._armed_since is None:
            self._armed_since = tick
        starved_just_now = bool(self._starved_ticks) and self._starved_ticks[-1] >= tick
        out_of_patience = tick - self._armed_since >= self.patience
        if not (starved_just_now or out_of_patience):
            return None
        profile = self.attack(model, self.seed + self._next_salvo, model_name)
        self._next_salvo += 1
        self._armed_since = None
        return profile

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        return self._mount(model, self._stalest_shard(), salvo_seed, model_name)


class OracleAttacker(AdaptiveAdversary):
    """Upper-bound calibration: given the true planner state, not a guess.

    Deep-copies the victim's scheduler (planner, epoch/RNG position,
    exposure counters and all) and simulates it forward to compute, for
    every shard, the exact pass at which it is next scanned — then flips
    into the one scanned last.  This is the best any attacker could do
    with *total* schedule knowledge, so its measured latency calibrates
    the worst case of each defense: one rotation for fixed orders, just
    under two rotations for the jittered planner.  Both stay within the
    scheduler's declared ``worst_case_lag_passes`` — the bound the matrix
    gate enforces per cell.
    """

    kind = "oracle"

    def _last_scanned_shard(self) -> int:
        clone = copy.deepcopy(self.scheduler)
        first_scan: Dict[int, int] = {}
        horizon = 2 * clone.worst_case_lag_passes + 2
        for simulated_pass in range(1, horizon + 1):
            selection = clone.plan()
            clone.apply_scan(selection, np.empty(0, dtype=np.int64))
            for shard in selection:
                first_scan.setdefault(int(shard), simulated_pass)
            if len(first_scan) == clone.num_shards:
                break
        if not first_scan:
            return 0
        return max(first_scan, key=lambda shard: (first_scan[shard], shard))

    def attack(self, model: Module, salvo_seed: int, model_name: str) -> AttackProfile:
        return self._mount(model, self._last_scanned_shard(), salvo_seed, model_name)
