"""Knowledgeable attackers (Section VIII of the paper).

Two evasion strategies are modelled for an attacker who knows a
checksum-based MSB defense is in place but does *not* know the secret key
or the interleaving strategy:

* :class:`PairedFlipAttack` — "flip multiple bits in a group": in addition
  to the PBFA-selected flips, the attacker adds compensating MSB flips of
  the opposite direction inside what it believes is the same checksum
  group (a contiguous block of ``assumed_group_size`` weights), so that the
  unmasked addition checksum is unchanged.  Interleaving breaks the
  attacker's notion of "same group" and defeats this.
* :class:`LowBitAttack` — "avoid flipping MSB": PBFA restricted to lower
  bit positions (MSB-1 by default).  Many more flips are needed for the
  same damage, and a 3-bit signature catches them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.attacks.bitflip import apply_bit_flips, make_bit_flip
from repro.attacks.pbfa import AttackResult, PbfaConfig, ProgressiveBitFlipAttack
from repro.attacks.profiles import AttackProfile, BitFlip, FlipDirection
from repro.errors import AttackError
from repro.nn.module import Module
from repro.quant.bitops import MSB_POSITION, get_bit
from repro.quant.layers import quantized_layers
from repro.utils.rng import new_rng


@dataclass
class PairedFlipConfig:
    """Configuration of the paired-flip (checksum-evading) attacker."""

    pbfa: PbfaConfig = field(default_factory=PbfaConfig)
    assumed_group_size: int = 64
    seed: int = 0


class PairedFlipAttack:
    """PBFA plus compensating opposite-direction MSB flips in the same assumed group.

    For every PBFA flip the attacker searches the contiguous block of
    ``assumed_group_size`` weights around the victim weight for another
    weight whose MSB currently has the opposite value, and flips it too.
    The pair (0→1, 1→0) leaves the plain addition checksum unchanged, so a
    defense without masking/interleaving would miss both flips.  The total
    number of injected flips is therefore up to ``2 × num_flips``
    (20 in the paper's Fig. 7 experiment).
    """

    def __init__(self, config: Optional[PairedFlipConfig] = None) -> None:
        self.config = config or PairedFlipConfig()

    def run(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        model_name: str = "",
    ) -> AttackResult:
        """Run PBFA, then add the compensating flips.  Modifies ``model`` in place."""
        config = self.config
        pbfa = ProgressiveBitFlipAttack(config.pbfa)
        result = pbfa.run(model, images, labels, model_name=model_name)

        layer_map = dict(quantized_layers(model))
        rng = new_rng(("paired-flip", config.seed))
        compensating: List[BitFlip] = []
        taken = {
            (flip.layer_name, flip.flat_index, flip.bit_position)
            for flip in result.profile.flips
        }
        for flip in list(result.profile.flips):
            partner = self._find_partner(flip, layer_map, taken, rng)
            if partner is None:
                continue
            apply_bit_flips(model, [partner])
            compensating.append(partner)
            taken.add((partner.layer_name, partner.flat_index, partner.bit_position))

        profile = AttackProfile(
            flips=list(result.profile.flips) + compensating,
            model_name=model_name,
            attack_name="paired-flip",
            seed=config.seed,
            loss_trajectory=result.profile.loss_trajectory,
        )
        return AttackResult(
            profile=profile,
            loss_before=result.loss_before,
            loss_after=result.loss_after,
            losses=result.losses,
        )

    def _find_partner(
        self,
        flip: BitFlip,
        layer_map,
        taken,
        rng: np.random.Generator,
    ) -> Optional[BitFlip]:
        """A compensating MSB flip in the attacker's assumed (contiguous) group."""
        if flip.bit_position != MSB_POSITION:
            return None
        layer = layer_map.get(flip.layer_name)
        if layer is None:
            return None
        qweight_flat = layer.qweight.reshape(-1)
        group_size = self.config.assumed_group_size
        group_index = flip.flat_index // group_size
        start = group_index * group_size
        stop = min(start + group_size, qweight_flat.size)

        # The PBFA flip has already been applied, so the victim's MSB now has
        # the *new* value; the compensating flip must go the opposite way of
        # the original flip direction.
        want_bit = 1 if flip.direction is FlipDirection.ZERO_TO_ONE else 0
        candidates = [
            index
            for index in range(start, stop)
            if index != flip.flat_index
            and (flip.layer_name, index, MSB_POSITION) not in taken
            and int(get_bit(np.int8(qweight_flat[index]), MSB_POSITION)) == want_bit
        ]
        if not candidates:
            return None
        # Prefer a small-magnitude victim: its MSB flip produces a large
        # weight change, so the compensating flip also damages accuracy.
        # Pick randomly among the smallest quartile to avoid a fixed pattern.
        candidates.sort(key=lambda index: abs(int(qweight_flat[index])))
        pool = candidates[: max(1, len(candidates) // 4)]
        chosen = int(pool[int(rng.integers(0, len(pool)))])
        return make_bit_flip(flip.layer_name, layer.qweight, chosen, MSB_POSITION)


class LowBitAttack:
    """PBFA restricted to bit positions below the MSB (Section VIII, 'avoid flipping MSB').

    With only MSB-1 flips allowed, the attacker needs roughly 3× as many
    flips for comparable damage on ResNet-20 (the paper quotes ~30 vs 10).
    """

    def __init__(
        self,
        num_flips: int = 30,
        bit_positions: Tuple[int, ...] = (6,),
        attack_batch_size: int = 16,
        candidate_layers: int = 5,
        seed: int = 0,
    ) -> None:
        if MSB_POSITION in bit_positions:
            raise AttackError("LowBitAttack must not include the MSB position")
        self.config = PbfaConfig(
            num_flips=num_flips,
            attack_batch_size=attack_batch_size,
            candidate_layers=candidate_layers,
            bit_positions=bit_positions,
            seed=seed,
        )

    def run(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        model_name: str = "",
    ) -> AttackResult:
        """Run the restricted PBFA in place on ``model``."""
        attack = ProgressiveBitFlipAttack(self.config)
        result = attack.run(model, images, labels, model_name=model_name)
        result.profile.attack_name = "low-bit"
        return result
