"""Bit-flip records, attack profiles and their statistics.

An :class:`AttackProfile` is the "vulnerable bit profile" of the paper's
threat model (Fig. 1): the ordered list of bits that the software-side
attack identified, which the hardware side (rowhammer) then mounts.  The
characterization experiments (Table I, Table II, Fig. 2) are statistics
over a collection of such profiles.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quant.bitops import MSB_POSITION


class FlipDirection(str, Enum):
    """Direction of a bit flip."""

    ZERO_TO_ONE = "0->1"
    ONE_TO_ZERO = "1->0"


@dataclass(frozen=True)
class BitFlip:
    """One bit flip in one quantized weight.

    Attributes
    ----------
    layer_name:
        Name of the quantized layer (as reported by
        :func:`repro.quant.layers.quantized_layers`).
    flat_index:
        Index into the layer's flattened int8 weight tensor.
    bit_position:
        0 (LSB) .. 7 (MSB / sign bit).
    direction:
        Whether the stored bit goes 0→1 or 1→0.
    value_before / value_after:
        The int8 weight value before and after the flip.
    """

    layer_name: str
    flat_index: int
    bit_position: int
    direction: FlipDirection
    value_before: int
    value_after: int

    @property
    def is_msb(self) -> bool:
        return self.bit_position == MSB_POSITION

    def to_dict(self) -> Dict:
        record = asdict(self)
        record["direction"] = self.direction.value
        return record

    @staticmethod
    def from_dict(record: Dict) -> "BitFlip":
        return BitFlip(
            layer_name=record["layer_name"],
            flat_index=int(record["flat_index"]),
            bit_position=int(record["bit_position"]),
            direction=FlipDirection(record["direction"]),
            value_before=int(record["value_before"]),
            value_after=int(record["value_after"]),
        )


@dataclass
class AttackProfile:
    """The ordered list of bit flips produced by one attack round."""

    flips: List[BitFlip] = field(default_factory=list)
    model_name: str = ""
    attack_name: str = ""
    seed: Optional[int] = None
    loss_trajectory: List[float] = field(default_factory=list)
    accuracy_before: Optional[float] = None
    accuracy_after: Optional[float] = None

    def __len__(self) -> int:
        return len(self.flips)

    def __iter__(self):
        return iter(self.flips)

    @property
    def num_msb_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.is_msb)

    def layers_touched(self) -> List[str]:
        """Names of layers containing at least one flipped bit (stable order)."""
        seen: List[str] = []
        for flip in self.flips:
            if flip.layer_name not in seen:
                seen.append(flip.layer_name)
        return seen

    def to_dict(self) -> Dict:
        return {
            "flips": [flip.to_dict() for flip in self.flips],
            "model_name": self.model_name,
            "attack_name": self.attack_name,
            "seed": self.seed,
            "loss_trajectory": list(self.loss_trajectory),
            "accuracy_before": self.accuracy_before,
            "accuracy_after": self.accuracy_after,
        }

    @staticmethod
    def from_dict(record: Dict) -> "AttackProfile":
        return AttackProfile(
            flips=[BitFlip.from_dict(item) for item in record.get("flips", [])],
            model_name=record.get("model_name", ""),
            attack_name=record.get("attack_name", ""),
            seed=record.get("seed"),
            loss_trajectory=list(record.get("loss_trajectory", [])),
            accuracy_before=record.get("accuracy_before"),
            accuracy_after=record.get("accuracy_after"),
        )


def save_profiles(profiles: Sequence[AttackProfile], path: Path) -> None:
    """Serialize a list of profiles to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([profile.to_dict() for profile in profiles], handle, indent=1)


def load_profiles(path: Path) -> List[AttackProfile]:
    """Load profiles previously written by :func:`save_profiles`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        records = json.load(handle)
    return [AttackProfile.from_dict(record) for record in records]


# ---------------------------------------------------------------------------
# Statistics used by the characterization experiments (Tables I / II, Fig. 2)
# ---------------------------------------------------------------------------

def bit_position_histogram(profiles: Iterable[AttackProfile]) -> Dict[str, int]:
    """Counts of flips by category: MSB 0→1, MSB 1→0, and all other bits.

    These are the three columns of Table I in the paper.
    """
    counts = {"msb_0_to_1": 0, "msb_1_to_0": 0, "others": 0}
    for profile in profiles:
        for flip in profile:
            if not flip.is_msb:
                counts["others"] += 1
            elif flip.direction is FlipDirection.ZERO_TO_ONE:
                counts["msb_0_to_1"] += 1
            else:
                counts["msb_1_to_0"] += 1
    return counts


def weight_value_histogram(
    profiles: Iterable[AttackProfile],
    bin_edges: Sequence[int] = (-128, -32, 0, 32, 128),
) -> Dict[str, int]:
    """Counts of targeted weights by their pre-attack value range (Table II)."""
    edges = list(bin_edges)
    labels = [f"({edges[i]}, {edges[i + 1]})" for i in range(len(edges) - 1)]
    counts = {label: 0 for label in labels}
    for profile in profiles:
        for flip in profile:
            for i, label in enumerate(labels):
                if edges[i] <= flip.value_before < edges[i + 1]:
                    counts[label] += 1
                    break
    return counts


def multi_flip_group_proportion(
    profiles: Iterable[AttackProfile],
    layer_sizes: Dict[str, int],
    group_size: int,
) -> float:
    """Proportion of attacked groups that contain more than one flipped bit.

    This reproduces Fig. 2: weights of each layer are partitioned into
    contiguous groups of ``group_size`` (the pre-interleaving layout) and we
    measure how often two or more of a profile's flips land in the same
    group.
    """
    total_groups_hit = 0
    multi_hit_groups = 0
    for profile in profiles:
        group_counts: Dict[Tuple[str, int], int] = {}
        for flip in profile:
            if flip.layer_name not in layer_sizes:
                continue
            group_index = flip.flat_index // group_size
            key = (flip.layer_name, group_index)
            group_counts[key] = group_counts.get(key, 0) + 1
        total_groups_hit += len(group_counts)
        multi_hit_groups += sum(1 for count in group_counts.values() if count > 1)
    if total_groups_hit == 0:
        return 0.0
    return multi_hit_groups / total_groups_hit


def profile_statistics(profiles: Sequence[AttackProfile]) -> Dict:
    """Aggregate statistics over a set of profiles (used in reports/tests)."""
    profiles = list(profiles)
    num_flips = sum(len(profile) for profile in profiles)
    histogram = bit_position_histogram(profiles)
    msb_fraction = (
        (histogram["msb_0_to_1"] + histogram["msb_1_to_0"]) / num_flips if num_flips else 0.0
    )
    return {
        "num_profiles": len(profiles),
        "num_flips": num_flips,
        "bit_position_histogram": histogram,
        "msb_fraction": msb_fraction,
        "weight_value_histogram": weight_value_histogram(profiles),
        "mean_flips_per_profile": num_flips / len(profiles) if profiles else 0.0,
    }
