"""Random bit-flip attack (the weak baseline the paper dismisses).

The paper argues that random flips are "too weak to be considered as an
attack": 100 random flips degrade accuracy by less than 1 %.  The class is
still useful for two purposes in this reproduction:

* reproducing that claim (sanity benchmark);
* the miss-rate study of Section VI.B, where random MSB flips are injected
  into a single small layer to measure the detector's miss probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.attacks.bitflip import apply_bit_flips, make_bit_flip
from repro.attacks.profiles import AttackProfile
from repro.errors import AttackError
from repro.nn.module import Module
from repro.quant.bitops import INT8_BITS, MSB_POSITION
from repro.quant.layers import quantized_layers
from repro.utils.rng import new_rng


@dataclass
class RandomFlipConfig:
    """Configuration of the random bit-flip attack."""

    num_flips: int = 100
    bit_positions: Tuple[int, ...] = tuple(range(INT8_BITS))
    msb_only: bool = False
    layer_names: Optional[Sequence[str]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_flips <= 0:
            raise AttackError("num_flips must be positive")


class RandomBitFlipAttack:
    """Flip uniformly random (weight, bit) pairs across the quantized layers."""

    def __init__(self, config: Optional[RandomFlipConfig] = None) -> None:
        self.config = config or RandomFlipConfig()

    def run(self, model: Module, model_name: str = "") -> AttackProfile:
        """Apply the random flips in place and return the profile."""
        config = self.config
        layers = quantized_layers(model)
        if config.layer_names is not None:
            wanted = set(config.layer_names)
            layers = [(name, layer) for name, layer in layers if name in wanted]
        if not layers:
            raise AttackError("No quantized layers matched the attack configuration")
        for name, layer in layers:
            if not layer.is_quantized:
                raise AttackError(f"Layer {name!r} must be quantized before attacking")

        sizes = np.array([layer.qweight.size for _, layer in layers], dtype=np.int64)
        cumulative = np.concatenate([[0], np.cumsum(sizes)])
        total = int(cumulative[-1])

        rng = new_rng(("random-bitflip", config.seed))
        positions = (
            np.full(config.num_flips, MSB_POSITION)
            if config.msb_only
            else rng.choice(config.bit_positions, size=config.num_flips)
        )
        global_indices = rng.choice(total, size=config.num_flips, replace=False)

        profile = AttackProfile(model_name=model_name, attack_name="random", seed=config.seed)
        for global_index, bit_position in zip(global_indices, positions):
            layer_index = int(np.searchsorted(cumulative, global_index, side="right") - 1)
            name, layer = layers[layer_index]
            flat_index = int(global_index - cumulative[layer_index])
            flip = make_bit_flip(name, layer.qweight, flat_index, int(bit_position))
            apply_bit_flips(model, [flip])
            profile.flips.append(flip)
        return profile
