"""Adversarial weight attacks on 8-bit quantized models.

* :class:`ProgressiveBitFlipAttack` — the PBFA of Rakin et al. (ICCV 2019),
  the strongest known adversarial weight attack and the threat the paper
  defends against.
* :class:`RandomBitFlipAttack` — the weak random-flip baseline the paper
  dismisses (flipping 100 random bits barely moves accuracy).
* :mod:`repro.attacks.knowledgeable` — attackers that know a checksum
  defense is present (paired-flip evasion, MSB-avoiding attacks), used in
  Section VIII of the paper.
* :mod:`repro.attacks.adaptive` — schedule-aware adversaries that observe
  the scan rotation and fire into the maximum-staleness window (rotation
  tracking, budget-starvation timing, and the oracle upper bound), the
  threat model the jittered planner defends against.
"""

from repro.attacks.profiles import (
    AttackProfile,
    BitFlip,
    FlipDirection,
    load_profiles,
    profile_statistics,
    save_profiles,
)
from repro.attacks.bitflip import (
    apply_bit_flips,
    apply_profile,
    revert_profile,
    snapshot_qweights,
    restore_qweights,
)
from repro.attacks.pbfa import AttackResult, PbfaConfig, ProgressiveBitFlipAttack
from repro.attacks.random_attack import RandomBitFlipAttack, RandomFlipConfig
from repro.attacks.knowledgeable import (
    LowBitAttack,
    PairedFlipAttack,
    PairedFlipConfig,
)
from repro.attacks.scripted import (
    AttackCadence,
    LowBitAdversary,
    PairedFlipAdversary,
    PbfaAdversary,
    RandomFlipAdversary,
    ScriptedAdversary,
)
from repro.attacks.adaptive import (
    AdaptiveAdversary,
    BudgetAwareAttacker,
    OracleAttacker,
    RotationTracker,
    flips_into_shard,
)

__all__ = [
    "BitFlip",
    "FlipDirection",
    "AttackProfile",
    "profile_statistics",
    "save_profiles",
    "load_profiles",
    "apply_bit_flips",
    "apply_profile",
    "revert_profile",
    "snapshot_qweights",
    "restore_qweights",
    "PbfaConfig",
    "AttackResult",
    "ProgressiveBitFlipAttack",
    "RandomFlipConfig",
    "RandomBitFlipAttack",
    "PairedFlipConfig",
    "PairedFlipAttack",
    "LowBitAttack",
    "AttackCadence",
    "ScriptedAdversary",
    "RandomFlipAdversary",
    "PbfaAdversary",
    "PairedFlipAdversary",
    "LowBitAdversary",
    "AdaptiveAdversary",
    "RotationTracker",
    "BudgetAwareAttacker",
    "OracleAttacker",
    "flips_into_shard",
]
