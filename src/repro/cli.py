"""Command-line interface for the RADAR reproduction.

Installed as the ``repro-radar`` console script (or run as
``python -m repro.cli``).  Subcommands map onto the experiment harnesses so
the paper's artifacts can be regenerated without writing any Python:

* ``list-setups`` — show the model-zoo setups and whether they are cached;
* ``overhead`` — Table IV / Table V (analytic system simulation; fast);
* ``storage`` — the Fig. 6 storage sweep (fast);
* ``missrate`` — the Section VI.B random-MSB-flip miss-rate study (fast);
* ``characterize`` — Table I / Table II / Fig. 2 (runs PBFA; slower);
* ``detect`` — the Fig. 4 detection sweep (runs PBFA; slower);
* ``recover`` — the Table III recovery sweep (runs PBFA; slowest).

Three subcommands drive the run-time protection machinery directly:

* ``protect`` — build the golden signatures for a setup and report the
  per-layer grouping plus the amortized scan plan;
* ``scan`` — run amortized scan passes (optionally after injecting random
  MSB flips) and show the per-pass cost / detection-lag timeline; with
  ``--all``, every cached model-zoo setup is registered into one
  :class:`~repro.core.fleet.VerificationEngine` and scanned as a fleet;
* ``serve-demo`` — a self-contained fleet-engine demo: several small models
  served together, one attacked mid-rotation, detected, repaired *and
  re-signed* automatically by the engine's
  detect → recover → reprotect lifecycle.  ``--workers`` sizes the engine's
  batch worker pool and ``--events`` prints the engine's event stream
  (detection / recovery / reprotect / budget_exhausted).

All three accept ``--budget-ms``: instead of fixing the shard structure, the
slice each pass verifies is sized from a latency budget by the analytic scan
cost model (:mod:`repro.core.cost`); for ``serve-demo`` and ``scan --all``
the budget is fleet-wide and split across models by exposure and flagged
history.

All three also accept ``--state-dir``, backed by
:class:`~repro.telemetry.store.StateStore`: ``protect`` seeds (and ``scan``
resumes and updates) the per-setup measured scan-cost calibration, while
``serve-demo`` and ``scan --all`` persist the whole engine's learned state —
calibrated cost-model EWMAs, planner flip rates, scheduler rotation
counters, lifecycle states — so a killed-and-restarted service resumes warm
instead of re-calibrating from the analytic prior.

* ``sla-report`` — run the scripted attack campaign
  (:mod:`repro.experiments.campaign`: random / PBFA / knowledgeable
  adversaries, burst and trickle cadences) against engine-managed fleets
  and print the per-model detection-latency SLA (p50/p95/p99 in serving
  ticks and wall-clock milliseconds) the attached telemetry collected.

Every subcommand prints the same plain-text table the corresponding
benchmark emits and can optionally save the rows as JSON with ``--output``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments import reporting
from repro.version import __version__


def _add_common_model_arguments(parser: argparse.ArgumentParser, default_setup: str) -> None:
    parser.add_argument(
        "--setup",
        default=default_setup,
        help="model-zoo setup to use (see 'repro-radar list-setups')",
    )
    parser.add_argument("--rounds", type=int, default=None, help="attack rounds per configuration")
    parser.add_argument("--num-flips", type=int, default=10, help="bit flips per attack round")
    parser.add_argument(
        "--group-sizes", type=int, nargs="+", default=None, help="group sizes G to sweep"
    )
    parser.add_argument("--output", type=Path, default=None, help="write the rows to this JSON file")


def _emit(rows: List[Dict], title: str, output: Optional[Path]) -> None:
    print(reporting.render_table(rows, title=title))
    if output is not None:
        reporting.save_results(rows, output)
        print(f"saved {len(rows)} rows to {output}")


def _announce_restore(engine, restore: Optional[Dict]) -> None:
    """Print whether an engine warm-started from persisted state."""
    if restore is None:
        print("no persisted engine state; cold start (analytic calibration)")
        return
    restored = restore["restored"]
    calibrated = []
    for name in restored:
        observations = getattr(engine.get(name).cost_model, "observations", 0)
        if observations:
            calibrated.append(f"{name} ({observations} obs)")
    print(
        f"resumed warm from persisted state: {len(restored)} models restored"
        + (f", calibrated pricing for {', '.join(calibrated)}" if calibrated else "")
    )
    for note in restore["partial"]:
        print(f"  partial restore: {note}")
    for name in restore["skipped"]:
        print(f"  persisted model {name!r} is not registered; skipped")


def _resolve_parallelism(args: argparse.Namespace) -> Optional[Dict[str, int]]:
    """Validated ``{"workers": W, "processes": P}`` for engine commands.

    Returns ``None`` (caller exits 2) when ``--workers`` and ``--processes``
    are both raised — the engine refuses that combination too, but the CLI
    catches it before any model is loaded.  When ``--processes`` is raised
    on a platform without ``multiprocessing.shared_memory``, degrades to
    the same count of worker *threads* with a warning instead of failing.
    """
    workers = getattr(args, "workers", 1)
    processes = getattr(args, "processes", 1)
    if workers > 1 and processes > 1:
        print(
            "error: --workers and --processes are mutually exclusive; pick "
            "thread-pooled scanning (--workers N) or process-pooled "
            "scanning over shared-memory planes (--processes N)",
            file=sys.stderr,
        )
        return None
    if processes > 1:
        from repro.core import shared_memory_available

        if not shared_memory_available():
            print(
                "warning: multiprocessing.shared_memory is unavailable on "
                f"this platform; degrading --processes {processes} to "
                f"{processes} worker threads",
                file=sys.stderr,
            )
            workers, processes = processes, 1
    return {"workers": workers, "processes": processes}


def _default_group_sizes(setup: str) -> Sequence[int]:
    if "resnet18" in setup:
        return (64, 128, 256, 512, 1024)
    if "resnet20" in setup:
        return (4, 8, 16, 32, 64)
    return (8, 16, 32)


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for strictly positive floats (latency budgets)."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _group_size_arg(text: str) -> int:
    """argparse type for the checksum group size (``G >= 2``)."""
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(f"group size must be >= 2, got {value}")
    return value


def _default_group_size(setup: str) -> int:
    """The paper's recommended single G for a setup (Section VII)."""
    if "resnet18" in setup:
        return 512
    if "resnet20" in setup:
        return 8
    return 16


def _protection_config(args: argparse.Namespace):
    from repro.core import RadarConfig

    return RadarConfig(
        group_size=(
            args.group_size if args.group_size is not None else _default_group_size(args.setup)
        ),
        signature_bits=args.signature_bits,
        use_interleave=not args.no_interleave,
        use_masking=not args.no_masking,
    )


def _add_protection_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--setup",
        default="resnet20-cifar",
        help="model-zoo setup to protect (see 'repro-radar list-setups')",
    )
    parser.add_argument(
        "--group-size", type=_group_size_arg, default=None,
        help="weights per checksum group (default: the paper's recommendation)",
    )
    parser.add_argument("--signature-bits", type=int, default=2, choices=(1, 2, 3))
    parser.add_argument("--no-interleave", action="store_true", help="disable t-interleaving")
    parser.add_argument("--no-masking", action="store_true", help="disable secret-key masking")
    parser.add_argument(
        "--num-shards", type=_positive_int, default=8,
        help="shards the signature groups are partitioned into for amortized scanning",
    )
    parser.add_argument(
        "--scan-policy",
        default="round_robin",
        choices=("round_robin", "priority_exposure", "jittered", "full"),
        help="shard-selection policy of the amortized scheduler",
    )
    parser.add_argument(
        "--shards-per-pass", type=_positive_int, default=1, help="shards verified per scan pass"
    )
    parser.add_argument(
        "--budget-ms", type=_positive_float, default=None,
        help="per-pass latency budget in milliseconds; sizes shards adaptively from the "
        "analytic cost model (overrides --num-shards / --shards-per-pass)",
    )
    parser.add_argument(
        "--state-dir", type=Path, default=None,
        help="directory persisting calibrated scan-cost state across runs "
        "(protect seeds it, scan resumes and updates it)",
    )
    parser.add_argument("--output", type=Path, default=None, help="write the rows to this JSON file")


def _build_scheduler(protector, args: argparse.Namespace, cost_model=None):
    """The amortized scheduler a protection subcommand asked for.

    ``--budget-ms`` switches from structural sizing (``--num-shards``) to
    budget-driven sizing via :meth:`ModelProtector.scheduler_for_budget`.
    ``cost_model`` overrides the analytic default (the ``--state-dir``
    warm-calibration path).
    """
    from repro.core import ScanPolicy

    if args.budget_ms is not None:
        return protector.scheduler_for_budget(
            args.budget_ms / 1e3,
            cost_model=cost_model,
            policy=ScanPolicy(args.scan_policy),
        )
    return protector.scheduler(
        num_shards=args.num_shards,
        policy=ScanPolicy(args.scan_policy),
        shards_per_pass=args.shards_per_pass,
        cost_model=cost_model,
    )


# -- subcommand handlers -------------------------------------------------------

def _cmd_list_setups(args: argparse.Namespace) -> int:
    from repro.models.zoo import ModelZoo, available_setups, _ZOO

    zoo = ModelZoo()
    rows = [
        {
            "setup": name,
            "model": _ZOO[name].model_name,
            "cached": zoo.is_cached(name),
            "description": _ZOO[name].description,
        }
        for name in available_setups()
    ]
    _emit(rows, "Model-zoo setups", args.output)
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.experiments.overhead import (
        table4_amortized,
        table4_time_overhead,
        table5_crc_comparison,
    )

    rows4 = table4_time_overhead()
    _emit(rows4, "Table IV — RADAR time overhead", args.output)
    rows5 = table5_crc_comparison(include_hamming=args.include_hamming)
    _emit(rows5, "Table V — RADAR vs CRC overhead", None)
    if args.amortized:
        rows4a = table4_amortized()
        _emit(
            rows4a,
            "Table IV (amortized) — per-pass overhead, one shard of N per batch",
            None,
        )
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    from repro.experiments.overhead import storage_sweep

    rows: List[Dict] = []
    for label, group_sizes in (("resnet20", (4, 8, 16, 32, 64)), ("resnet18", (64, 128, 256, 512, 1024))):
        rows.extend(storage_sweep(label, group_sizes, signature_bits=args.signature_bits))
    _emit(rows, "Signature storage vs group size (Fig. 6 x-axis)", args.output)
    return 0


def _cmd_missrate(args: argparse.Namespace) -> int:
    from repro.experiments.detection import missrate_study

    rows = missrate_study(
        num_weights=args.num_weights,
        group_sizes=tuple(args.group_sizes or (16, 32)),
        flips_per_round=args.num_flips,
        rounds=args.rounds or 100_000,
    )
    _emit(rows, "Random-MSB-flip miss rate (Section VI.B)", args.output)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import run_characterization
    from repro.experiments.common import ExperimentContext

    context = ExperimentContext.load(args.setup)
    results = run_characterization(
        context,
        group_sizes=tuple(args.group_sizes or _default_group_sizes(args.setup)),
        num_flips=args.num_flips,
        rounds=args.rounds,
    )
    _emit(results["table1"], "Table I — PBFA bit-position statistics", args.output)
    _emit(results["table2"], "Table II — targeted-weight value ranges", None)
    _emit(results["fig2"], "Fig. 2 — multi-flip group proportion", None)
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.experiments.common import ExperimentContext, generate_pbfa_profiles
    from repro.experiments.detection import fig4_detection_sweep

    context = ExperimentContext.load(args.setup)
    profiles = generate_pbfa_profiles(
        context, num_flips=args.num_flips, rounds=args.rounds
    )
    rows = fig4_detection_sweep(
        context, profiles, tuple(args.group_sizes or _default_group_sizes(args.setup))
    )
    _emit(rows, "Fig. 4 — detected bit flips vs group size", args.output)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.experiments.common import ExperimentContext
    from repro.experiments.recovery import table3_recovery

    context = ExperimentContext.load(args.setup)
    rows = table3_recovery(
        context,
        group_sizes=tuple(args.group_sizes or _default_group_sizes(args.setup)[:3]),
        num_flips_values=(5, args.num_flips) if args.num_flips != 5 else (5,),
        rounds=args.rounds,
    )
    _emit(rows, "Table III — accuracy recovery", args.output)
    return 0


def _cmd_protect(args: argparse.Namespace) -> int:
    from repro.core import ModelProtector
    from repro.experiments.common import ExperimentContext

    context = ExperimentContext.load(args.setup)
    protector = ModelProtector(_protection_config(args))
    store = protector.protect(context.model)
    rows = [
        {
            "layer": entry.layer_name,
            "weights": entry.layout.num_weights,
            "groups": entry.num_groups,
            "group_size": entry.layout.group_size,
        }
        for entry in store
    ]
    _emit(rows, f"Protected layers of {args.setup}", args.output)
    scheduler = _build_scheduler(protector, args)
    plan = scheduler.describe()
    print(
        f"signature storage: {protector.storage_overhead_kb():.2f} KB "
        f"({store.total_groups()} groups x {store.config.signature_bits} bits)"
    )
    print(
        f"amortized scan plan: {plan['shards']} shards, policy {plan['policy']}, "
        f"~{store.total_groups() * plan['shards_per_pass'] // max(plan['shards'], 1)} groups/pass, "
        f"full model verified within {plan['worst_case_lag_passes']} passes"
    )
    if args.budget_ms is not None:
        print(
            f"latency budget: {plan['budget_ms']:.4f} ms/pass, "
            f"priced per-pass cost {plan['per_pass_cost_ms']:.4f} ms "
            "(analytic cost model)"
        )
    if args.state_dir is not None:
        from repro.telemetry.store import StateStore

        state_store = StateStore(args.state_dir)
        cost_model = state_store.measured_cost_model(args.setup, protector.config)
        path = state_store.save_calibration(
            args.setup, cost_model, radar_config=protector.config
        )
        print(
            f"calibration state for {args.setup!r} seeded in {path} "
            f"({cost_model.observations} prior observations, "
            f"{cost_model.seconds_per_group * 1e6:.4g} us/group)"
        )
    return 0


def _cmd_scan_all(args: argparse.Namespace) -> int:
    """``scan --all``: every cached setup as one fleet through the engine."""
    from repro.attacks import RandomBitFlipAttack, RandomFlipConfig
    from repro.core import (
        MeasuredScanCostModel,
        RadarConfig,
        ScanPolicy,
        VerificationEngine,
    )
    from repro.experiments.common import ExperimentContext
    from repro.models.zoo import ModelZoo, available_setups

    parallelism = _resolve_parallelism(args)
    if parallelism is None:
        return 2
    zoo = ModelZoo()
    setups = [args.setup] + [
        setup
        for setup in available_setups()
        if setup != args.setup and zoo.is_cached(setup)
    ]
    engine = VerificationEngine(
        num_shards=args.num_shards,
        policy=ScanPolicy(args.scan_policy),
        shards_per_pass=args.shards_per_pass,
        budget_s=args.budget_ms / 1e3 if args.budget_ms is not None else None,
        **parallelism,
    )
    contexts = {}
    for setup in setups:
        context = ExperimentContext.load(setup)
        contexts[setup] = context
        config = RadarConfig(
            group_size=(
                args.group_size
                if args.group_size is not None
                else _default_group_size(setup)
            ),
            signature_bits=args.signature_bits,
            use_interleave=not args.no_interleave,
            use_masking=not args.no_masking,
        )
        engine.register(
            setup,
            context.model,
            config=config,
            # With a state dir each model calibrates measured pricing, so
            # the persisted engine state has learned prices to resume from
            # (an analytic model would save nothing restorable).
            cost_model=(
                MeasuredScanCostModel.from_radar_config(config)
                if args.state_dir is not None
                else None
            ),
        )
    state_store = None
    if args.state_dir is not None:
        from repro.telemetry.store import StateStore

        state_store = StateStore(args.state_dir)
        restore = state_store.restore_engine(engine)
        _announce_restore(engine, restore)
    print(reporting.render_table(engine.describe(), title="Fleet engine registry"))

    passes = args.passes or max(
        engine.get(setup).scheduler.worst_case_lag_passes for setup in setups
    )
    if args.inject_flips and not 0 <= args.inject_at_pass < passes:
        print(
            f"error: --inject-at-pass {args.inject_at_pass} is outside the "
            f"{passes} scheduled passes; nothing would be injected",
            file=sys.stderr,
        )
        return 2
    rows: List[Dict] = []
    detected_at = None
    for pass_index in range(passes):
        if args.inject_flips and pass_index == args.inject_at_pass:
            RandomBitFlipAttack(
                RandomFlipConfig(num_flips=args.inject_flips, msb_only=True, seed=args.seed)
            ).run(contexts[args.setup].model, args.setup)
        outcomes = engine.tick()
        for name, outcome in outcomes.items():
            if outcome.attack_detected and detected_at is None:
                detected_at = pass_index + 1
            row = {
                "pass": pass_index + 1,
                "model": name,
                "shards": ",".join(str(i) for i in outcome.scan.shard_indices),
                "groups_checked": outcome.scan.groups_checked,
                "flagged_groups": outcome.scan.report.num_flagged_groups,
                "state": outcome.state.value,
            }
            if outcome.budget_s is not None:
                row["budget_share_ms"] = round(outcome.budget_s * 1e3, 6)
            rows.append(row)
    _emit(rows, f"Fleet scan of {len(setups)} setups", args.output)
    if state_store is not None:
        print(f"engine state persisted to {state_store.save_engine(engine)}")
    if args.inject_flips:
        if detected_at is None:
            print("injected flips not yet scanned (increase --passes to cover a full rotation)")
        else:
            print(
                f"attack on {args.setup} injected before pass {args.inject_at_pass + 1}, "
                f"detected, recovered and re-signed at pass {detected_at}"
            )
    engine.close()
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.attacks import RandomBitFlipAttack, RandomFlipConfig
    from repro.core import ModelProtector
    from repro.experiments.common import ExperimentContext

    if args.all:
        return _cmd_scan_all(args)
    context = ExperimentContext.load(args.setup)
    protector = ModelProtector(_protection_config(args))
    protector.protect(context.model)
    state_store = None
    cost_model = None
    if args.state_dir is not None:
        from repro.telemetry.store import StateStore

        state_store = StateStore(args.state_dir)
        cost_model = state_store.measured_cost_model(args.setup, protector.config)
        if cost_model.observations:
            print(
                f"resumed calibration for {args.setup!r}: "
                f"{cost_model.seconds_per_group * 1e6:.4g} us/group after "
                f"{cost_model.observations} observed passes"
            )
        else:
            print(
                f"no persisted calibration for {args.setup!r}; starting from "
                "the analytic prior"
            )
    scheduler = _build_scheduler(protector, args, cost_model=cost_model)
    passes = args.passes or scheduler.worst_case_lag_passes
    if args.inject_flips and not 0 <= args.inject_at_pass < passes:
        print(
            f"error: --inject-at-pass {args.inject_at_pass} is outside the "
            f"{passes} scheduled passes; nothing would be injected",
            file=sys.stderr,
        )
        return 2
    rows: List[Dict] = []
    detected_at = None
    for pass_index in range(passes):
        if args.inject_flips and pass_index == args.inject_at_pass:
            RandomBitFlipAttack(
                RandomFlipConfig(num_flips=args.inject_flips, msb_only=True, seed=args.seed)
            ).run(context.model, context.model_name)
        result = scheduler.step(context.model)
        if result.attack_detected and detected_at is None:
            detected_at = result.pass_index
        row = {
            "pass": result.pass_index,
            "shards": ",".join(str(index) for index in result.shard_indices),
            "groups_checked": result.groups_checked,
            "flagged_groups": result.report.num_flagged_groups,
            "rotation_complete": result.rotation_complete,
        }
        if result.planned_cost_s is not None:
            row["planned_cost_ms"] = round(result.planned_cost_s * 1e3, 6)
        rows.append(row)
    _emit(rows, f"Amortized scan of {args.setup} ({scheduler.num_shards} shards)", args.output)
    if state_store is not None and cost_model is not None:
        path = state_store.save_calibration(
            args.setup, cost_model, radar_config=protector.config
        )
        print(
            f"calibration persisted to {path}: "
            f"{cost_model.seconds_per_group * 1e6:.4g} us/group "
            f"({cost_model.observations} total observations)"
        )
    reference = protector.scan(context.model)
    print(f"full-scan reference: {reference.num_flagged_groups} flagged groups")
    if args.inject_flips:
        if detected_at is None:
            print("injected flips not yet scanned (increase --passes to cover a full rotation)")
        else:
            print(
                f"attack injected before pass {args.inject_at_pass + 1}, "
                f"detected at pass {detected_at} "
                f"(lag {detected_at - args.inject_at_pass - 1} passes)"
            )
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    from repro.attacks import RandomBitFlipAttack, RandomFlipConfig
    from repro.core import (
        MeasuredScanCostModel,
        RadarConfig,
        RecoveryPolicy,
        ScanPolicy,
        VerificationEngine,
    )
    from repro.models.small import MLP
    from repro.quant.layers import quantize_model

    parallelism = _resolve_parallelism(args)
    if parallelism is None:
        return 2
    config = RadarConfig(
        group_size=args.group_size if args.group_size is not None else 16,
        signature_bits=args.signature_bits,
    )
    fault_plan = None
    if args.chaos_seed is not None:
        if parallelism.get("processes", 1) > 1:
            from repro.core import FaultPlan

            # One scan task per process per tick (the engine splits each
            # tick's batch across the pool), so this covers the full run.
            fault_plan = FaultPlan.seeded(
                args.chaos_seed,
                num_tasks=args.passes * parallelism["processes"],
                kill_rate=0.15,
                delay_rate=0.15,
                drop_rate=0.1,
                max_delay_s=0.01,
            )
            print(
                f"chaos: seeded fault plan ({len(fault_plan)} injections over "
                f"{args.passes * parallelism['processes']} scan tasks, "
                f"seed={args.chaos_seed})"
            )
        else:
            print(
                "warning: --chaos-seed only injects faults into the process "
                "scan pool; ignored without --processes > 1",
                file=sys.stderr,
            )
    engine = VerificationEngine(
        config,
        num_shards=args.num_shards,
        policy=ScanPolicy(args.scan_policy),
        shards_per_pass=args.shards_per_pass,
        budget_s=args.budget_ms / 1e3 if args.budget_ms is not None else None,
        recovery_policy=RecoveryPolicy.RELOAD,
        auto_reprotect=True,
        fault_plan=fault_plan,
        **parallelism,
    )
    for index in range(args.models):
        model = MLP(
            input_dim=64, num_classes=4, hidden_dims=(48, 24), seed=args.seed + index
        )
        quantize_model(model)
        engine.register(
            f"model-{index}",
            model,
            keep_golden_weights=True,
            # With a state dir the demo calibrates measured pricing so a
            # restart has something learned to resume from.
            cost_model=(
                MeasuredScanCostModel.from_radar_config(config)
                if args.state_dir is not None
                else None
            ),
        )
    from repro.telemetry.monitor import FleetTelemetry

    telemetry = FleetTelemetry().attach(engine)
    recorder = None
    if args.trace_dir is not None:
        from repro.telemetry.trace import FlightRecorder, SpanTracer

        args.trace_dir.mkdir(parents=True, exist_ok=True)
        # auto_dump_dir makes the engine's DEGRADED transition dump the
        # flight recorder unprompted — the trace that explains the
        # degradation is on disk before anyone asks for it.
        recorder = FlightRecorder(auto_dump_dir=args.trace_dir)
        engine.tracer = SpanTracer(recorder=recorder)
    server = None
    if args.http_port is not None:
        from repro.telemetry.httpd import ObservabilityServer

        server = ObservabilityServer(
            telemetry=telemetry,
            engine=engine,
            recorder=recorder,
            port=args.http_port,
        ).start()
        print(f"observability server listening on {server.url}")
    state_store = None
    if args.state_dir is not None:
        from repro.telemetry.store import StateStore

        state_store = StateStore(args.state_dir)
        # Reap shared-memory segments leaked by a previous coordinator that
        # died without unlinking them, then register this run's segments so
        # the *next* restart can do the same for us.
        reaped = state_store.reap_orphan_segments()
        if reaped:
            print(
                f"reaped {len(reaped)} orphaned shared-memory segment(s) "
                "left by a dead coordinator"
            )
        engine.segment_registry = state_store.segment_registry()
        _announce_restore(engine, state_store.restore_engine(engine))
        if state_store.restore_telemetry(telemetry):
            # Histogram windows merge (persisted samples first), so the
            # SLA percentiles below span restarts of this demo.
            print(f"telemetry metrics restored from {state_store.telemetry_path}")
    print(reporting.render_table(engine.describe(), title="Fleet engine registry"))

    victim = engine.get("model-0")
    rows: List[Dict] = []
    detected_at = None
    for pass_index in range(args.passes):
        if pass_index == args.attack_at_pass:
            RandomBitFlipAttack(
                RandomFlipConfig(num_flips=args.num_flips, msb_only=True, seed=args.seed)
            ).run(victim.model, victim.name)
            telemetry.note_injection(victim.name, flips=args.num_flips)
        outcomes = engine.tick()
        for name, outcome in outcomes.items():
            if outcome.attack_detected and detected_at is None:
                detected_at = pass_index + 1
            recovered = 0
            if outcome.recovery is not None:
                recovered = (
                    outcome.recovery.reloaded_weights + outcome.recovery.zeroed_weights
                )
            row = {
                "pass": pass_index + 1,
                "model": name,
                "shards": ",".join(str(i) for i in outcome.scan.shard_indices),
                "flagged_groups": outcome.scan.report.num_flagged_groups,
                "recovered_weights": recovered,
                "state": outcome.state.value,
            }
            if outcome.budget_s is not None:
                row["budget_share_ms"] = round(outcome.budget_s * 1e3, 6)
            rows.append(row)
        if (
            args.report_every is not None
            and (pass_index + 1) % args.report_every == 0
        ):
            fault = telemetry.fault_report()
            live = ", ".join(
                f"{key}={value}" for key, value in sorted(fault.items()) if value
            )
            print(f"[pass {pass_index + 1}] fault report: {live or 'clean'}")
            worker_rows = telemetry.worker_report()
            if worker_rows:
                print(
                    reporting.render_table(
                        worker_rows,
                        title=f"Worker load after pass {pass_index + 1}",
                    )
                )
    _emit(rows, f"Serving timeline ({args.models} models, {args.num_shards} shards)", args.output)
    if args.events:
        event_rows = [
            {
                "tick": event.tick,
                "event": event.type.value,
                "model": event.model,
                "detail": ", ".join(f"{key}={value}" for key, value in event.detail.items()),
            }
            for event in engine.bus.events()
        ]
        if event_rows:
            print(reporting.render_table(event_rows, title="Fleet event stream"))
        else:
            print("no fleet events (clean rotation)")
    if detected_at is None:
        print("attack not detected inside the served window; increase --passes")
    else:
        print(
            f"attack on {victim.name} before pass {args.attack_at_pass + 1}, "
            f"detected and repaired at pass {detected_at} "
            f"(exposure window: {detected_at - args.attack_at_pass - 1} passes; "
            "re-signed by the engine)"
        )
    if parallelism.get("processes", 1) > 1:
        stats = engine.fault_stats()
        interesting = {
            key: value
            for key, value in stats.items()
            if key != "degraded" and value
        }
        if interesting or fault_plan is not None:
            summary = ", ".join(
                f"{key}={value}" for key, value in sorted(interesting.items())
            )
            print(f"scan pool resilience: {summary or 'no faults observed'}")
        if stats.get("degraded"):
            print(
                "scan pool finished DEGRADED (in-process scanning); it will "
                "re-probe the pool after a healthy window"
            )
    if state_store is not None:
        print(f"engine state persisted to {state_store.save_engine(engine)}")
        print(f"telemetry metrics persisted to {state_store.save_telemetry(telemetry)}")
        ticks = telemetry.registry.histogram(
            "detection_latency_ticks", model=victim.name
        )
        if len(ticks):
            quantiles = ", ".join(
                f"{label}={value:g}" for label, value in ticks.percentiles().items()
            )
            print(
                f"detection latency over {len(ticks)} persisted detection(s) "
                f"(ticks, spans restarts): {quantiles}"
            )
    if server is not None and args.linger_s is not None:
        import time as _time

        print(f"lingering {args.linger_s:g}s for scrapes on {server.url}")
        _time.sleep(args.linger_s)
    if server is not None:
        server.close()
    if recorder is not None:
        trace_path = args.trace_dir / "trace.jsonl"
        recorder.dump_jsonl(trace_path)
        print(
            f"trace exported: {len(recorder)} span(s) -> {trace_path} "
            f"(analyze with scripts/trace_analysis.py)"
        )
    engine.close()
    return 0


def _cmd_infer_demo(args: argparse.Namespace) -> int:
    """``infer-demo``: budgeted protected inference with persistent calibration.

    A small in-process MLP is wrapped in
    :class:`~repro.core.runtime.ProtectedInference` under a per-batch
    latency budget, fed random batches, and its *learned* state — the
    measured cost model's EWMA price and the auto-tuned check cadence —
    round-trips through ``--state-dir``: a second run resumes calibrated
    instead of re-learning from the analytic prior.
    """
    import numpy as np

    from repro.core import ProtectedInference, RadarConfig, RecoveryPolicy

    from repro.models.small import MLP
    from repro.quant.layers import quantize_model

    config = RadarConfig(
        group_size=args.group_size if args.group_size is not None else 16,
        signature_bits=args.signature_bits,
    )
    model = MLP(input_dim=64, num_classes=4, hidden_dims=(48, 24), seed=args.seed)
    quantize_model(model)
    runtime = ProtectedInference(
        model,
        config=config,
        policy=RecoveryPolicy.ZERO,
        budget_s=args.budget_ms / 1e3,
    )
    state_store = None
    warm = False
    if args.state_dir is not None:
        from repro.telemetry.store import StateStore

        state_store = StateStore(args.state_dir)
        warm = state_store.restore_runtime(
            "infer-demo", runtime, radar_config=runtime.protector.config
        )
    observations = getattr(runtime.cost_model, "observations", 0)
    price = getattr(runtime.cost_model, "seconds_per_group", float("nan"))
    if warm:
        print(
            f"resumed calibration: {price * 1e6:.4g} us/group after "
            f"{observations} observed checks; cadence re-derived to every "
            f"{runtime.check_every} batch(es)"
        )
    else:
        print(
            "cold start (analytic calibration prior); checking every "
            f"{runtime.check_every} batch(es)"
        )
    rng = np.random.default_rng(args.seed)
    for _ in range(args.batches):
        runtime(rng.normal(size=(args.batch_size, 64)))
    observations = getattr(runtime.cost_model, "observations", 0)
    price = getattr(runtime.cost_model, "seconds_per_group", float("nan"))
    rows = [
        {
            "batches": runtime.log.batches,
            "checks": runtime.log.checks,
            "check_every": runtime.check_every,
            "detections": runtime.log.detections,
            "check_ms_total": round(runtime.log.check_seconds * 1e3, 4),
            "calibrated_us_per_group": round(price * 1e6, 4),
            "observations": observations,
            "warm_start": warm,
        }
    ]
    _emit(
        rows,
        f"Protected inference ({args.batches} batches, "
        f"{args.budget_ms:g} ms/batch budget)",
        args.output,
    )
    if state_store is not None:
        path = state_store.save_runtime(
            "infer-demo", runtime, radar_config=runtime.protector.config
        )
        print(
            f"runtime calibration persisted to {path}: "
            f"{price * 1e6:.4g} us/group ({observations} total observations, "
            f"cadence {runtime.check_every})"
        )
    return 0


def _cmd_sla_report(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import default_scenarios, run_campaign

    if args.matrix:
        return _cmd_sla_matrix(args)
    scenarios = list(default_scenarios())
    if args.scenario:
        known = {scenario.name: scenario for scenario in scenarios}
        unknown = [name for name in args.scenario if name not in known]
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)}; "
                f"available: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
        scenarios = [known[name] for name in args.scenario]
    rows = run_campaign(
        scenarios=scenarios,
        num_models=args.models,
        num_shards=args.num_shards,
        budget_s=args.budget_ms / 1e3 if args.budget_ms is not None else None,
        seed=args.seed,
    )
    _emit(
        rows,
        f"Detection-latency SLA — {len(scenarios)} attack scenarios vs a "
        f"{args.models}-model fleet (per-model p50/p95/p99)",
        args.output,
    )
    missed = sum(row["missed"] for row in rows)
    if missed:
        print(f"WARNING: {missed} injection(s) were never detected")
    else:
        print(
            "all injections detected; worst p99 detection latency: "
            f"{max(row['p99_detection_ticks'] for row in rows):.0f} ticks / "
            f"{max(row['p99_detection_ms'] for row in rows):.3f} ms"
        )
    return 0


def _cmd_sla_matrix(args: argparse.Namespace) -> int:
    """``sla-report --matrix``: the adversary × cadence × defense matrix."""
    from repro.experiments.campaign import (
        full_matrix,
        matrix_summary,
        run_matrix,
        smoke_matrix,
    )

    cells = full_matrix() if args.full else smoke_matrix()
    rows = run_matrix(cells, num_models=args.models, seed=args.seed)
    subset = "full" if args.full else "smoke"
    _emit(
        rows,
        f"Campaign matrix ({subset}, {len(cells)} cells) — detection-latency "
        "percentiles per adversary × cadence × defense",
        args.output,
    )
    summary = matrix_summary(rows)
    if summary:
        print(
            reporting.render_table(
                summary,
                title="Adaptive-gap summary (tracker p99 as a fraction of each "
                "defense's worst-case bound; 1.0 = attacker owns the bound)",
            )
        )
    missed = sum(row["missed"] for row in rows)
    unbounded = [
        row["case"]
        for row in rows
        if row["p99_bound_ticks"] is not None
        and row["p99_detection_ticks"] > row["p99_bound_ticks"]
    ]
    if missed or unbounded:
        if missed:
            print(f"WARNING: {missed} injection(s) were never detected")
        for case in unbounded:
            print(f"WARNING: {case} exceeded its declared worst-case bound")
        return 1
    print(
        f"all {len(cells)} cells detected every injection within their "
        "declared bounds"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-radar",
        description="Reproduction of RADAR: run-time adversarial weight attack detection and recovery.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-setups", help="list model-zoo setups")
    list_parser.add_argument("--output", type=Path, default=None)
    list_parser.set_defaults(handler=_cmd_list_setups)

    overhead_parser = subparsers.add_parser("overhead", help="Table IV / V time and storage overhead")
    overhead_parser.add_argument("--include-hamming", action="store_true")
    overhead_parser.add_argument(
        "--amortized", action="store_true",
        help="also print Table IV re-priced for amortized (sharded) checking",
    )
    overhead_parser.add_argument("--output", type=Path, default=None)
    overhead_parser.set_defaults(handler=_cmd_overhead)

    storage_parser = subparsers.add_parser("storage", help="signature storage sweep (Fig. 6)")
    storage_parser.add_argument("--signature-bits", type=int, default=2, choices=(1, 2, 3))
    storage_parser.add_argument("--output", type=Path, default=None)
    storage_parser.set_defaults(handler=_cmd_storage)

    missrate_parser = subparsers.add_parser("missrate", help="random-MSB-flip miss rate (Section VI.B)")
    missrate_parser.add_argument("--num-weights", type=int, default=512)
    missrate_parser.add_argument("--num-flips", type=int, default=10)
    missrate_parser.add_argument("--rounds", type=int, default=None)
    missrate_parser.add_argument("--group-sizes", type=int, nargs="+", default=None)
    missrate_parser.add_argument("--output", type=Path, default=None)
    missrate_parser.set_defaults(handler=_cmd_missrate)

    characterize_parser = subparsers.add_parser(
        "characterize", help="PBFA characterization (Table I / II, Fig. 2)"
    )
    _add_common_model_arguments(characterize_parser, default_setup="resnet20-cifar")
    characterize_parser.set_defaults(handler=_cmd_characterize)

    detect_parser = subparsers.add_parser("detect", help="detection sweep (Fig. 4)")
    _add_common_model_arguments(detect_parser, default_setup="resnet20-cifar")
    detect_parser.set_defaults(handler=_cmd_detect)

    recover_parser = subparsers.add_parser("recover", help="accuracy recovery sweep (Table III)")
    _add_common_model_arguments(recover_parser, default_setup="resnet20-cifar")
    recover_parser.set_defaults(handler=_cmd_recover)

    protect_parser = subparsers.add_parser(
        "protect", help="build golden signatures and show the amortized scan plan"
    )
    _add_protection_arguments(protect_parser)
    protect_parser.set_defaults(handler=_cmd_protect)

    scan_parser = subparsers.add_parser(
        "scan", help="run amortized scan passes (optionally after injecting flips)"
    )
    _add_protection_arguments(scan_parser)
    scan_parser.add_argument(
        "--passes", type=_positive_int, default=None,
        help="scan passes to run (default: one full rotation)",
    )
    scan_parser.add_argument(
        "--inject-flips", type=int, default=0,
        help="random MSB flips to inject before the pass given by --inject-at-pass",
    )
    scan_parser.add_argument(
        "--inject-at-pass", type=int, default=0,
        help="0-based pass before which the flips are injected",
    )
    scan_parser.add_argument("--seed", type=int, default=0)
    scan_parser.add_argument(
        "--all", action="store_true",
        help="scan every cached model-zoo setup (plus --setup) as one fleet "
        "through the verification engine",
    )
    scan_parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="with --all: worker threads for the engine's batched passes "
        "(mutually exclusive with --processes)",
    )
    scan_parser.add_argument(
        "--processes", type=_positive_int, default=1,
        help="with --all: scan worker processes attached read-only to "
        "shared-memory weight planes (mutually exclusive with --workers)",
    )
    scan_parser.set_defaults(handler=_cmd_scan)

    serve_parser = subparsers.add_parser(
        "serve-demo",
        help="ProtectionService demo: a small model fleet, one attacked mid-rotation",
    )
    serve_parser.add_argument("--models", type=_positive_int, default=3, help="models in the fleet")
    serve_parser.add_argument("--group-size", type=_group_size_arg, default=None)
    serve_parser.add_argument("--signature-bits", type=int, default=2, choices=(1, 2, 3))
    serve_parser.add_argument("--num-shards", type=_positive_int, default=4)
    serve_parser.add_argument(
        "--scan-policy",
        default="round_robin",
        choices=("round_robin", "priority_exposure", "jittered", "full"),
    )
    serve_parser.add_argument("--shards-per-pass", type=_positive_int, default=1)
    serve_parser.add_argument("--passes", type=_positive_int, default=8, help="serving ticks to simulate")
    serve_parser.add_argument(
        "--attack-at-pass", type=int, default=2,
        help="0-based pass before which model-0 is attacked",
    )
    serve_parser.add_argument("--num-flips", type=int, default=6, help="flips the attack injects")
    serve_parser.add_argument(
        "--budget-ms", type=_positive_float, default=None,
        help="fleet-wide latency budget per serving tick, split across models "
        "by exposure and flagged history",
    )
    serve_parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker threads for the engine's batched verification passes "
        "(mutually exclusive with --processes)",
    )
    serve_parser.add_argument(
        "--processes", type=_positive_int, default=1,
        help="scan worker processes attached read-only to shared-memory "
        "weight planes (mutually exclusive with --workers; falls back to "
        "threads where shared memory is unavailable)",
    )
    serve_parser.add_argument(
        "--events", action="store_true",
        help="print the engine's event stream (detection / recovery / "
        "reprotect / budget_exhausted) after the timeline",
    )
    serve_parser.add_argument(
        "--state-dir", type=Path, default=None,
        help="persist and resume the engine's learned state (calibrated "
        "cost models, planner flip rates, scheduler counters) across runs; "
        "also reaps shared-memory segments orphaned by a dead coordinator",
    )
    serve_parser.add_argument(
        "--chaos-seed", type=int, default=None,
        help="seed a deterministic fault plan against the process scan pool "
        "(worker kills, delays, dropped results); requires --processes > 1. "
        "Verdicts stay bit-identical; the pool self-heals",
    )
    serve_parser.add_argument(
        "--http-port", type=int, default=None,
        help="serve the observability surface (/metrics Prometheus text, "
        "/healthz, /fault-stats, /trace) on 127.0.0.1; 0 picks an "
        "ephemeral port and prints it",
    )
    serve_parser.add_argument(
        "--trace-dir", type=Path, default=None,
        help="enable span tracing of every engine tick; the full trace is "
        "exported as JSONL here at the end of the run, and dumped "
        "automatically if the scan pool degrades",
    )
    serve_parser.add_argument(
        "--report-every", type=_positive_int, default=None,
        help="print the live fault report and per-worker load table every "
        "N passes",
    )
    serve_parser.add_argument(
        "--linger-s", type=_positive_float, default=None,
        help="keep the --http-port server up this many seconds after the "
        "passes finish (a scrape window; the demo itself runs in "
        "milliseconds)",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--output", type=Path, default=None)
    serve_parser.set_defaults(handler=_cmd_serve_demo)

    infer_parser = subparsers.add_parser(
        "infer-demo",
        help="budgeted protected inference on a small in-process model, "
        "with measured-cost calibration persisted via --state-dir",
    )
    infer_parser.add_argument("--group-size", type=_group_size_arg, default=None)
    infer_parser.add_argument("--signature-bits", type=int, default=2, choices=(1, 2, 3))
    infer_parser.add_argument(
        "--batches", type=_positive_int, default=32, help="inference batches to run"
    )
    infer_parser.add_argument("--batch-size", type=_positive_int, default=8)
    infer_parser.add_argument(
        "--budget-ms", type=_positive_float, default=0.2,
        help="amortized per-batch checking budget; the check cadence "
        "auto-tunes to it from the calibrated measured cost model",
    )
    infer_parser.add_argument(
        "--state-dir", type=Path, default=None,
        help="persist and resume the runtime's measured calibration and "
        "check cadence across runs",
    )
    infer_parser.add_argument("--seed", type=int, default=0)
    infer_parser.add_argument("--output", type=Path, default=None)
    infer_parser.set_defaults(handler=_cmd_infer_demo)

    sla_parser = subparsers.add_parser(
        "sla-report",
        help="run the scripted attack campaign and print per-model "
        "p50/p95/p99 detection-latency SLAs",
    )
    sla_parser.add_argument(
        "--scenario", action="append", default=None,
        help="run only this scenario (repeatable; default: all scenarios)",
    )
    sla_parser.add_argument(
        "--matrix", action="store_true",
        help="run the adversary × cadence × defense configuration matrix "
        "instead of the scripted scenarios (adaptive attackers vs fixed "
        "and jittered rotations)",
    )
    sla_parser.add_argument(
        "--full", action="store_true",
        help="with --matrix: run the exhaustive offline sweep instead of "
        "the deterministic CI smoke subset",
    )
    sla_parser.add_argument(
        "--models", type=_positive_int, default=3, help="models in each scenario's fleet"
    )
    sla_parser.add_argument("--num-shards", type=_positive_int, default=4)
    sla_parser.add_argument(
        "--budget-ms", type=_positive_float, default=None,
        help="fleet-wide latency budget per tick (adds budget-utilisation "
        "telemetry to the report)",
    )
    sla_parser.add_argument("--seed", type=int, default=0)
    sla_parser.add_argument("--output", type=Path, default=None)
    sla_parser.set_defaults(handler=_cmd_sla_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-radar`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
