"""Command-line interface for the RADAR reproduction.

Installed as the ``repro-radar`` console script (or run as
``python -m repro.cli``).  Subcommands map onto the experiment harnesses so
the paper's artifacts can be regenerated without writing any Python:

* ``list-setups`` — show the model-zoo setups and whether they are cached;
* ``overhead`` — Table IV / Table V (analytic system simulation; fast);
* ``storage`` — the Fig. 6 storage sweep (fast);
* ``missrate`` — the Section VI.B random-MSB-flip miss-rate study (fast);
* ``characterize`` — Table I / Table II / Fig. 2 (runs PBFA; slower);
* ``detect`` — the Fig. 4 detection sweep (runs PBFA; slower);
* ``recover`` — the Table III recovery sweep (runs PBFA; slowest).

Every subcommand prints the same plain-text table the corresponding
benchmark emits and can optionally save the rows as JSON with ``--output``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments import reporting
from repro.version import __version__


def _add_common_model_arguments(parser: argparse.ArgumentParser, default_setup: str) -> None:
    parser.add_argument(
        "--setup",
        default=default_setup,
        help="model-zoo setup to use (see 'repro-radar list-setups')",
    )
    parser.add_argument("--rounds", type=int, default=None, help="attack rounds per configuration")
    parser.add_argument("--num-flips", type=int, default=10, help="bit flips per attack round")
    parser.add_argument(
        "--group-sizes", type=int, nargs="+", default=None, help="group sizes G to sweep"
    )
    parser.add_argument("--output", type=Path, default=None, help="write the rows to this JSON file")


def _emit(rows: List[Dict], title: str, output: Optional[Path]) -> None:
    print(reporting.render_table(rows, title=title))
    if output is not None:
        reporting.save_results(rows, output)
        print(f"saved {len(rows)} rows to {output}")


def _default_group_sizes(setup: str) -> Sequence[int]:
    if "resnet18" in setup:
        return (64, 128, 256, 512, 1024)
    if "resnet20" in setup:
        return (4, 8, 16, 32, 64)
    return (8, 16, 32)


# -- subcommand handlers -------------------------------------------------------

def _cmd_list_setups(args: argparse.Namespace) -> int:
    from repro.models.zoo import ModelZoo, available_setups, _ZOO

    zoo = ModelZoo()
    rows = [
        {
            "setup": name,
            "model": _ZOO[name].model_name,
            "cached": zoo.is_cached(name),
            "description": _ZOO[name].description,
        }
        for name in available_setups()
    ]
    _emit(rows, "Model-zoo setups", args.output)
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.experiments.overhead import table4_time_overhead, table5_crc_comparison

    rows4 = table4_time_overhead()
    _emit(rows4, "Table IV — RADAR time overhead", args.output)
    rows5 = table5_crc_comparison(include_hamming=args.include_hamming)
    _emit(rows5, "Table V — RADAR vs CRC overhead", None)
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    from repro.experiments.overhead import storage_sweep

    rows: List[Dict] = []
    for label, group_sizes in (("resnet20", (4, 8, 16, 32, 64)), ("resnet18", (64, 128, 256, 512, 1024))):
        rows.extend(storage_sweep(label, group_sizes, signature_bits=args.signature_bits))
    _emit(rows, "Signature storage vs group size (Fig. 6 x-axis)", args.output)
    return 0


def _cmd_missrate(args: argparse.Namespace) -> int:
    from repro.experiments.detection import missrate_study

    rows = missrate_study(
        num_weights=args.num_weights,
        group_sizes=tuple(args.group_sizes or (16, 32)),
        flips_per_round=args.num_flips,
        rounds=args.rounds or 100_000,
    )
    _emit(rows, "Random-MSB-flip miss rate (Section VI.B)", args.output)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import run_characterization
    from repro.experiments.common import ExperimentContext

    context = ExperimentContext.load(args.setup)
    results = run_characterization(
        context,
        group_sizes=tuple(args.group_sizes or _default_group_sizes(args.setup)),
        num_flips=args.num_flips,
        rounds=args.rounds,
    )
    _emit(results["table1"], "Table I — PBFA bit-position statistics", args.output)
    _emit(results["table2"], "Table II — targeted-weight value ranges", None)
    _emit(results["fig2"], "Fig. 2 — multi-flip group proportion", None)
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.experiments.common import ExperimentContext, generate_pbfa_profiles
    from repro.experiments.detection import fig4_detection_sweep

    context = ExperimentContext.load(args.setup)
    profiles = generate_pbfa_profiles(
        context, num_flips=args.num_flips, rounds=args.rounds
    )
    rows = fig4_detection_sweep(
        context, profiles, tuple(args.group_sizes or _default_group_sizes(args.setup))
    )
    _emit(rows, "Fig. 4 — detected bit flips vs group size", args.output)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.experiments.common import ExperimentContext
    from repro.experiments.recovery import table3_recovery

    context = ExperimentContext.load(args.setup)
    rows = table3_recovery(
        context,
        group_sizes=tuple(args.group_sizes or _default_group_sizes(args.setup)[:3]),
        num_flips_values=(5, args.num_flips) if args.num_flips != 5 else (5,),
        rounds=args.rounds,
    )
    _emit(rows, "Table III — accuracy recovery", args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-radar",
        description="Reproduction of RADAR: run-time adversarial weight attack detection and recovery.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-setups", help="list model-zoo setups")
    list_parser.add_argument("--output", type=Path, default=None)
    list_parser.set_defaults(handler=_cmd_list_setups)

    overhead_parser = subparsers.add_parser("overhead", help="Table IV / V time and storage overhead")
    overhead_parser.add_argument("--include-hamming", action="store_true")
    overhead_parser.add_argument("--output", type=Path, default=None)
    overhead_parser.set_defaults(handler=_cmd_overhead)

    storage_parser = subparsers.add_parser("storage", help="signature storage sweep (Fig. 6)")
    storage_parser.add_argument("--signature-bits", type=int, default=2, choices=(1, 2, 3))
    storage_parser.add_argument("--output", type=Path, default=None)
    storage_parser.set_defaults(handler=_cmd_storage)

    missrate_parser = subparsers.add_parser("missrate", help="random-MSB-flip miss rate (Section VI.B)")
    missrate_parser.add_argument("--num-weights", type=int, default=512)
    missrate_parser.add_argument("--num-flips", type=int, default=10)
    missrate_parser.add_argument("--rounds", type=int, default=None)
    missrate_parser.add_argument("--group-sizes", type=int, nargs="+", default=None)
    missrate_parser.add_argument("--output", type=Path, default=None)
    missrate_parser.set_defaults(handler=_cmd_missrate)

    characterize_parser = subparsers.add_parser(
        "characterize", help="PBFA characterization (Table I / II, Fig. 2)"
    )
    _add_common_model_arguments(characterize_parser, default_setup="resnet20-cifar")
    characterize_parser.set_defaults(handler=_cmd_characterize)

    detect_parser = subparsers.add_parser("detect", help="detection sweep (Fig. 4)")
    _add_common_model_arguments(detect_parser, default_setup="resnet20-cifar")
    detect_parser.set_defaults(handler=_cmd_detect)

    recover_parser = subparsers.add_parser("recover", help="accuracy recovery sweep (Table III)")
    _add_common_model_arguments(recover_parser, default_setup="resnet20-cifar")
    recover_parser.set_defaults(handler=_cmd_recover)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-radar`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
