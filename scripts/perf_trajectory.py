#!/usr/bin/env python
"""Print the perf trajectory: every speedup row across ``results/*.json``.

Each perf-optimization PR leaves a committed baseline artifact under
``results/`` with one or more ``*speedup*`` ratio columns (scan scheduler,
fleet engine, process pool, scan kernel, narrow accumulation).  This
script concatenates them into one table so a CI log — or a human skimming
it — sees the whole performance envelope at a glance, without opening
five JSON files.

Purely informational: it never fails the build (missing or malformed
artifacts are reported and skipped).  The enforcement lives in
``check_perf_regression.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Row fields worth echoing as the row's identity, in display order.
KEY_FIELDS = (
    "mode",
    "num_models",
    "processes",
    "num_shards",
    "model",
    "structured",
    "available_cpus",
)


def iter_speedup_rows(path: Path):
    """Yield ``(label, metric, value)`` for every speedup column in a file."""
    payload = json.loads(path.read_text())
    rows = payload.get("rows", []) if isinstance(payload, dict) else payload
    for row in rows:
        if not isinstance(row, dict):
            continue
        metrics = sorted(key for key in row if "speedup" in key)
        if not metrics:
            continue
        label = ", ".join(
            f"{field}={row[field]}" for field in KEY_FIELDS if field in row
        )
        for metric in metrics:
            value = row[metric]
            if isinstance(value, (int, float)):
                yield label, metric, float(value)


def main() -> int:
    table = []
    for path in sorted(RESULTS_DIR.glob("*.json")):
        try:
            for label, metric, value in iter_speedup_rows(path):
                table.append((path.name, label, metric, value))
        except (json.JSONDecodeError, OSError) as error:
            print(f"  (skipped {path.name}: {error})")
    if not table:
        print("no speedup rows found under", RESULTS_DIR)
        return 0
    widths = [
        max(len(row[column]) for row in table)
        for column in range(3)
    ]
    print("perf trajectory — committed speedup rows across results/:")
    for name, label, metric, value in table:
        print(
            f"  {name:<{widths[0]}}  {label:<{widths[1]}}  "
            f"{metric:<{widths[2]}}  {value:6.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
