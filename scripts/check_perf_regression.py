#!/usr/bin/env python
"""Perf-regression gate for the amortized scan scheduler.

Compares a fresh ``benchmarks/test_bench_scan_scheduler.py`` run against the
committed baseline (``results/scan_scheduler.json``).  Absolute per-pass
milliseconds vary wildly across CI hosts, so the gate checks the
*machine-independent* ratios instead: the amortized speedup over the full and
fused scans for each shard count must not fall below the baseline by more
than ``--tolerance`` (a fraction; 0.5 means a fresh speedup may be at most
50 % worse before the gate trips).  Structural fields (group counts, lag
bounds) must match exactly — a silent change there means the benchmark is no
longer measuring the same thing.

Exit status: 0 when no regression, 1 on regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RATIO_METRICS = ("speedup_vs_full", "speedup_vs_fused")
STRUCTURAL_FIELDS = ("groups", "groups_per_pass", "worst_case_lag_passes")


def load_rows(path: Path) -> dict:
    payload = json.loads(path.read_text())
    rows = payload["rows"] if isinstance(payload, dict) else payload
    return {row["num_shards"]: row for row in rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True, help="committed scan_scheduler.json"
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="freshly measured scan_scheduler.json"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional drop in speedup ratios (default 0.5)",
    )
    args = parser.parse_args(argv)

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)
    if set(baseline) != set(fresh):
        print(
            f"REGRESSION GATE: shard counts differ — baseline {sorted(baseline)}, "
            f"fresh {sorted(fresh)}"
        )
        return 1

    failures = []
    for num_shards, base_row in sorted(baseline.items()):
        fresh_row = fresh[num_shards]
        for metric in STRUCTURAL_FIELDS:
            if base_row[metric] != fresh_row[metric]:
                failures.append(
                    f"{num_shards} shards: {metric} changed "
                    f"{base_row[metric]} -> {fresh_row[metric]}"
                )
        for metric in RATIO_METRICS:
            floor = base_row[metric] * (1.0 - args.tolerance)
            if fresh_row[metric] < floor:
                failures.append(
                    f"{num_shards} shards: {metric} fell to {fresh_row[metric]:.2f}x "
                    f"(baseline {base_row[metric]:.2f}x, floor {floor:.2f}x)"
                )
        print(
            f"{num_shards:>3} shards: "
            + ", ".join(
                f"{metric} {fresh_row[metric]:.2f}x (baseline {base_row[metric]:.2f}x)"
                for metric in RATIO_METRICS
            )
        )

    if failures:
        print("\nREGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nregression gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
