#!/usr/bin/env python
"""Perf-regression gate for the run-time verification subsystem.

Compares a freshly measured benchmark run against its committed baseline
under ``results/``.  Absolute milliseconds vary wildly across CI hosts, so
the gate checks *machine-independent* ratios: a fresh speedup may be at
most ``--tolerance`` (a fraction; 0.5 = 50 %) worse than the committed one
before the gate trips.  Structural fields (group counts, lag bounds) must
match exactly — a silent change there means the benchmark is no longer
measuring the same thing.

Three benchmark kinds are understood (``--kind``):

* ``scan-scheduler`` (default) — ``results/scan_scheduler.json`` from
  ``benchmarks/test_bench_scan_scheduler.py``: rows keyed by ``num_shards``,
  ratio metrics ``speedup_vs_full`` / ``speedup_vs_fused``.
* ``fleet`` — ``results/fleet_throughput.json`` from
  ``benchmarks/test_bench_fleet_throughput.py``: rows keyed by
  ``num_models``, ratio metric ``speedup`` (batched vs sequential
  stepping).  ``--min-speedup`` additionally enforces an *absolute* floor
  on the best fleet-sized (>= 4 models) row — the acceptance bar that
  batched cross-model stepping stays >= 2x sequential now that the stacked
  einsum is cache-blocked, regardless of how the baseline drifts.
* ``kernel`` — ``results/scan_kernel.json`` from
  ``benchmarks/test_bench_scan_kernel.py``: rows keyed by ``mode``
  (``full`` / ``slice``), ratio metric ``speedup`` (zero-copy scan kernel
  vs the retained PR-3 per-layer path).  ``--min-speedup`` enforces an
  absolute floor on *every* row, structure-aware: rows measured on a
  ``structured`` plane (block-slice gather active) owe the full
  ``--min-speedup`` (the >= 4x acceptance bar), rows that rode the general
  gather owe only the pre-structure 2x bar.  ``structured`` is also a
  structural field — the baseline losing its structure claim is itself the
  regression.
* ``fleet-processes`` — ``results/fleet_processes.json`` from
  ``benchmarks/test_bench_fleet_processes.py``: rows keyed by
  ``processes``, ratio metric ``speedup_vs_single`` (process-pooled
  shared-memory scanning vs the inline single-process tick).  Speedup is
  only physical when the host exposes the parallelism, so rows whose
  recorded ``available_cpus`` is below their process count skip the ratio
  comparison, and ``--min-speedup`` (the >= 2.5x at 4 processes acceptance
  floor) is enforced on the best multi-process row that *did* have enough
  CPUs — a 1-core container reports the skip instead of failing.  Two
  validity checks always apply: every row must report ``oracle_match``
  (bit-exact flagged rows vs the sequential in-process oracle) and zero
  ``weight_bytes_copied_per_tick`` (scans gather from the shm-backed
  plane; weights never cross the result queue).
* ``campaign`` — ``results/campaign_sla.json`` from
  ``benchmarks/test_bench_campaign_sla.py``, ``results/campaign_matrix.json``
  from ``benchmarks/test_bench_campaign_matrix.py`` **and**
  ``results/fleet_chaos.json`` from
  ``benchmarks/test_bench_fleet_chaos.py``: rows keyed by ``case``.
  Milliseconds vary across hosts (committed campaign artifacts strip them
  entirely so reruns are byte-identical), so this gate is a *validity*
  gate rather than a ratio gate: every case must report a **finite** p99
  detection latency in ticks with **zero** missed injections, and the
  case set must match the committed baseline — a case silently
  disappearing or going undetected is the regression.  Rows that declare
  a ``p99_bound_ticks`` (the matrix cells of unbudgeted defenses) must
  additionally stay **at or under** that bound.  Chaos rows (those that
  declare ``faults_planned``) additionally owe fault transparency: every
  planned fault injected, verdicts bit-identical to the sequential
  oracle (``oracle_match``) and a self-healed pool (``pool_recovered``)
  with zero missed injections under chaos.  When the rows carry the
  matrix's ``adversary``/``defense`` axes, the gate also pins the
  adaptive-threat margins themselves: per cadence, the rotation tracker
  must beat the blind random attacker against the fixed rotation (mean
  detection latency strictly higher — the exploit is alive) **and**
  saturate the fixed rotation's worst-case bound (p99 == bound), while
  under the jittered planner its p99 must sit strictly *inside* the
  declared bound (the defense restores slack the fixed rotation forfeits).
* ``trace-overhead`` — ``results/trace_overhead.json`` from
  ``benchmarks/test_bench_trace_overhead.py``: rows keyed by ``mode``
  (``disabled`` / ``enabled``).  An *absolute* gate, not a ratio gate:
  each row commits to its own ``max_overhead_pct`` budget (tracing
  disabled must cost < 2 % of a fleet tick, enabled < 10 %) and the
  fresh ``overhead_pct`` must stay under it.  The budget itself is a
  structural field — quietly raising it in the benchmark without
  touching the committed baseline is caught.

Exit status: 0 when no regression, 1 on regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple


@dataclass(frozen=True)
class GateSpec:
    """What one benchmark kind's gate checks."""

    key_field: str
    ratio_metrics: Tuple[str, ...]
    structural_fields: Tuple[str, ...]


GATES: Dict[str, GateSpec] = {
    "scan-scheduler": GateSpec(
        key_field="num_shards",
        ratio_metrics=("speedup_vs_full", "speedup_vs_fused"),
        structural_fields=("groups", "groups_per_pass", "worst_case_lag_passes"),
    ),
    "fleet": GateSpec(
        key_field="num_models",
        ratio_metrics=("speedup",),
        structural_fields=("groups_per_tick",),
    ),
    "kernel": GateSpec(
        key_field="mode",
        ratio_metrics=("speedup",),
        structural_fields=("groups", "rows_per_pass", "num_shards", "structured"),
    ),
    "fleet-processes": GateSpec(
        key_field="processes",
        ratio_metrics=("speedup_vs_single",),
        structural_fields=("num_models", "groups_per_tick"),
    ),
    "trace-overhead": GateSpec(
        key_field="mode",
        ratio_metrics=(),
        structural_fields=("max_overhead_pct", "spans_per_tick"),
    ),
    "campaign": GateSpec(
        key_field="case",
        ratio_metrics=(),
        structural_fields=(
            "scenario",
            "model",
            "kind",
            "cadence",
            "signature_bits",
            "num_models",
            "num_shards",
        ),
    ),
}

#: Per-row SLA checks of the campaign gate: always-required finite metrics
#: (tick-space latency is deterministic and survives in committed
#: artifacts) and optional ones (wall-clock is checked only when a live
#: run kept it — committed artifacts strip milliseconds for determinism).
CAMPAIGN_FINITE_METRICS = ("p99_detection_ticks",)
CAMPAIGN_OPTIONAL_FINITE_METRICS = ("p99_detection_ms",)

#: Matrix-axis fields that must additionally match structurally when the
#: campaign rows carry them (the matrix artifact does, the scenario
#: artifact does not; the chaos artifact carries the seed/scale fields).
CAMPAIGN_MATRIX_STRUCTURAL = (
    "adversary",
    "defense",
    "policy",
    "budget_ms",
    "passes",
    "seed",
    "ticks",
    "processes",
    "faults_planned",
)

#: Rows at or above this fleet size count toward ``--min-speedup``.
FLEET_SIZE_FLOOR = 4

#: Kernel rows that rode the general gather (``structured: false``) owe
#: only the pre-structure acceptance bar, whatever ``--min-speedup`` asks
#: of the block-slice fast path.
KERNEL_UNSTRUCTURED_FLOOR = 2.0


def load_rows(path: Path, key_field: str) -> dict:
    payload = json.loads(path.read_text())
    rows = payload["rows"] if isinstance(payload, dict) else payload
    return {row[key_field]: row for row in rows}


def check_campaign_row(key: str, fresh_row: dict, failures: list) -> None:
    """Per-row validity of one campaign/matrix case."""
    for metric in CAMPAIGN_FINITE_METRICS:
        value = fresh_row.get(metric)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            failures.append(
                f"case={key}: {metric} is {value!r} "
                "(detection never happened or the window was truncated)"
            )
    for metric in CAMPAIGN_OPTIONAL_FINITE_METRICS:
        if metric not in fresh_row:
            continue
        value = fresh_row[metric]
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            failures.append(f"case={key}: {metric} is {value!r}")
    missed = fresh_row.get("missed", 0)
    if missed:
        failures.append(
            f"case={key}: {missed} injected attack(s) were never detected"
        )
    # Chaos-campaign rows (``results/fleet_chaos.json``) additionally claim
    # fault transparency: every planned fault injected (the supervision
    # path was actually exercised, not silently skipped), verdicts
    # bit-identical to the inline oracle, and the pool self-healed.
    if "faults_planned" in fresh_row:
        planned = fresh_row.get("faults_planned")
        injected = fresh_row.get("faults_injected")
        if not isinstance(planned, int) or planned < 1:
            failures.append(
                f"case={key}: chaos scenario planned {planned!r} faults "
                "(a chaos case must inject at least one)"
            )
        elif injected != planned:
            failures.append(
                f"case={key}: only {injected!r} of {planned} planned faults "
                "fired (the fault plan no longer covers the run's tasks)"
            )
        if not fresh_row.get("oracle_match"):
            failures.append(
                f"case={key}: verdicts diverged from the sequential oracle "
                "under fault injection"
            )
        if not fresh_row.get("pool_recovered"):
            failures.append(
                f"case={key}: the scan pool did not self-heal "
                "(engine finished degraded or poolless)"
            )
    bound = fresh_row.get("p99_bound_ticks")
    p99 = fresh_row.get("p99_detection_ticks")
    if (
        isinstance(bound, (int, float))
        and math.isfinite(bound)
        and isinstance(p99, (int, float))
        and p99 > bound
    ):
        failures.append(
            f"case={key}: p99 detection latency {p99} ticks exceeds the "
            f"scheduler's declared worst-case bound of {bound} ticks"
        )
    print(
        f"case={key}: p99 {p99} ticks"
        + (f" (bound {bound})" if bound is not None else "")
        + f", missed {missed}"
    )


def check_matrix_margins(fresh: dict, failures: list) -> None:
    """Cross-cell adaptive-threat margins (matrix artifacts only).

    Pins the PR's two headline claims per cadence that has the cells:
    the rotation tracker *degrades* the fixed rotation (strictly worse
    mean latency than a schedule-blind random attacker, p99 saturating
    the worst-case bound), and the jittered planner *restores* slack
    (tracker p99 strictly inside the jittered bound, a strictly smaller
    fraction of it than under the fixed rotation).
    """
    cells = {}
    for row in fresh.values():
        if row.get("defense") is None:
            continue
        cells[(row.get("adversary"), row["cadence"], row["defense"])] = row
    if not cells:
        return
    cadences = sorted({cadence for (_, cadence, _) in cells})
    for cadence in cadences:
        random_fixed = cells.get(("random", cadence, "fixed-rr"))
        tracker_fixed = cells.get(("rotation", cadence, "fixed-rr"))
        tracker_jittered = cells.get(("rotation", cadence, "jittered"))
        if tracker_fixed and random_fixed:
            tracker_mean = tracker_fixed["mean_detection_ticks"]
            random_mean = random_fixed["mean_detection_ticks"]
            if not tracker_mean > random_mean:
                failures.append(
                    f"cadence={cadence}: rotation tracker no longer degrades the "
                    f"fixed rotation (tracker mean {tracker_mean} ticks vs random "
                    f"{random_mean} ticks) — the adaptive exploit went stale"
                )
            else:
                print(
                    f"cadence={cadence}: exploit margin "
                    f"{tracker_mean / random_mean:.2f}x (tracker {tracker_mean} "
                    f"vs random {random_mean} mean ticks on fixed-rr)"
                )
        if tracker_fixed:
            bound = tracker_fixed.get("p99_bound_ticks")
            p99 = tracker_fixed["p99_detection_ticks"]
            if bound and p99 < bound:
                failures.append(
                    f"cadence={cadence}: tracker p99 {p99} no longer saturates "
                    f"the fixed rotation's bound {bound} — the committed margin "
                    "is measuring a weaker attacker than it claims"
                )
        if tracker_jittered:
            bound = tracker_jittered.get("p99_bound_ticks")
            p99 = tracker_jittered["p99_detection_ticks"]
            if bound and not p99 < bound:
                failures.append(
                    f"cadence={cadence}: tracker p99 {p99} reached the jittered "
                    f"bound {bound} — the randomized defense no longer restores "
                    "slack against the adaptive attacker"
                )
            elif bound:
                print(
                    f"cadence={cadence}: jittered defense holds "
                    f"(tracker p99 {p99} < bound {bound})"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kind", choices=sorted(GATES), default="scan-scheduler",
        help="which benchmark's gate to run (default: scan-scheduler)",
    )
    parser.add_argument(
        "--baseline", type=Path, required=True, help="committed results JSON"
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="freshly measured results JSON"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional drop in speedup ratios (default 0.5)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="absolute speedup floor: fleet = best >= 4-model row must clear "
        "it; kernel = every row (full AND slice) must clear it, with "
        "unstructured rows owing only the pre-structure 2x bar",
    )
    args = parser.parse_args(argv)

    spec = GATES[args.kind]
    baseline = load_rows(args.baseline, spec.key_field)
    fresh = load_rows(args.fresh, spec.key_field)
    if set(baseline) != set(fresh):
        print(
            f"REGRESSION GATE: {spec.key_field} values differ — "
            f"baseline {sorted(baseline)}, fresh {sorted(fresh)}"
        )
        return 1

    failures = []
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh[key]
        for metric in spec.structural_fields:
            if base_row[metric] != fresh_row[metric]:
                failures.append(
                    f"{spec.key_field}={key}: {metric} changed "
                    f"{base_row[metric]} -> {fresh_row[metric]}"
                )
        ratio_metrics = spec.ratio_metrics
        if args.kind == "fleet-processes":
            if not fresh_row.get("oracle_match", False):
                failures.append(
                    f"{spec.key_field}={key}: scan results diverged from the "
                    "sequential in-process oracle"
                )
            copied = fresh_row.get("weight_bytes_copied_per_tick", 0)
            if copied:
                failures.append(
                    f"{spec.key_field}={key}: {copied} weight bytes copied per "
                    "steady-state tick (the plane must stay shm-backed)"
                )
            cpus = fresh_row.get("available_cpus", 0)
            if isinstance(key, int) and key > 1 and cpus < key:
                print(
                    f"{spec.key_field}={key}: host exposes only {cpus} CPU(s); "
                    "speedup ratio not comparable, skipped"
                )
                ratio_metrics = ()
        for metric in ratio_metrics:
            floor = base_row[metric] * (1.0 - args.tolerance)
            if fresh_row[metric] < floor:
                failures.append(
                    f"{spec.key_field}={key}: {metric} fell to "
                    f"{fresh_row[metric]:.2f}x "
                    f"(baseline {base_row[metric]:.2f}x, floor {floor:.2f}x)"
                )
        if args.kind == "trace-overhead":
            overhead = fresh_row.get("overhead_pct")
            budget = fresh_row.get("max_overhead_pct")
            if not isinstance(overhead, (int, float)) or not math.isfinite(
                overhead
            ):
                failures.append(
                    f"{spec.key_field}={key}: overhead_pct is {overhead!r}"
                )
            elif overhead > budget:
                failures.append(
                    f"{spec.key_field}={key}: tracing overhead "
                    f"{overhead:.3f}% of a fleet tick exceeds the "
                    f"{budget:g}% budget"
                )
            else:
                print(
                    f"{spec.key_field}={key}: tracing overhead "
                    f"{overhead:.3f}% <= {budget:g}% budget"
                )
            continue
        if args.kind == "campaign":
            for metric in CAMPAIGN_MATRIX_STRUCTURAL:
                if metric in base_row and base_row[metric] != fresh_row.get(metric):
                    failures.append(
                        f"{spec.key_field}={key}: {metric} changed "
                        f"{base_row[metric]} -> {fresh_row.get(metric)}"
                    )
            check_campaign_row(key, fresh_row, failures)
            continue
        if ratio_metrics:
            print(
                f"{spec.key_field}={key}: "
                + ", ".join(
                    f"{metric} {fresh_row[metric]:.2f}x (baseline {base_row[metric]:.2f}x)"
                    for metric in ratio_metrics
                )
            )

    if args.kind == "campaign":
        check_matrix_margins(fresh, failures)

    if args.min_speedup is not None:
        if args.kind == "fleet":
            # Fleet floor: the best fleet-sized row must clear it (small
            # fleets amortize the batch dispatch less).
            fleet_rows = {
                key: row for key, row in fresh.items() if key >= FLEET_SIZE_FLOOR
            }
            if not fleet_rows:
                failures.append(
                    f"no rows with {spec.key_field} >= {FLEET_SIZE_FLOOR} to hold "
                    f"the {args.min_speedup:.2f}x floor"
                )
            else:
                best_key, best_row = max(
                    fleet_rows.items(), key=lambda item: item[1]["speedup"]
                )
                if best_row["speedup"] < args.min_speedup:
                    failures.append(
                        f"best fleet speedup {best_row['speedup']:.2f}x "
                        f"({spec.key_field}={best_key}) is below the "
                        f"{args.min_speedup:.2f}x acceptance floor"
                    )
                else:
                    print(
                        f"acceptance floor: best fleet speedup "
                        f"{best_row['speedup']:.2f}x "
                        f"({spec.key_field}={best_key}) >= {args.min_speedup:.2f}x"
                    )
        elif args.kind == "fleet-processes":
            # Process-scaling floor: the best multi-process row measured on a
            # host with enough CPUs for its process count must clear it.  A
            # host without that parallelism cannot hold the floor either way,
            # so it reports the skip (CI runners have the cores; dev
            # containers often do not).
            multi = {
                key: row
                for key, row in fresh.items()
                if isinstance(key, int) and key > 1
            }
            eligible = {
                key: row
                for key, row in multi.items()
                if row.get("available_cpus", 0) >= key
            }
            if not multi:
                failures.append(
                    f"no multi-process rows to hold the {args.min_speedup:.2f}x floor"
                )
            elif not eligible:
                cpus = max(row.get("available_cpus", 0) for row in multi.values())
                print(
                    f"acceptance floor skipped: host exposes only {cpus} CPU(s), "
                    "no row had the parallelism its process count needs"
                )
            else:
                best_key, best_row = max(
                    eligible.items(), key=lambda item: item[1]["speedup_vs_single"]
                )
                if best_row["speedup_vs_single"] < args.min_speedup:
                    failures.append(
                        f"best process-pool speedup {best_row['speedup_vs_single']:.2f}x "
                        f"({spec.key_field}={best_key}) is below the "
                        f"{args.min_speedup:.2f}x acceptance floor"
                    )
                else:
                    print(
                        f"acceptance floor: best process-pool speedup "
                        f"{best_row['speedup_vs_single']:.2f}x "
                        f"({spec.key_field}={best_key}) >= {args.min_speedup:.2f}x"
                    )
        elif args.kind == "kernel":
            # Kernel floor: every mode (full scan AND scheduler slice) must
            # clear it — the acceptance bar is not mode-averaged.  The full
            # --min-speedup only binds where the structure-aware gather
            # applies; unstructured rows keep the pre-structure bar.
            for key, row in sorted(fresh.items()):
                structured = bool(row.get("structured", False))
                floor = (
                    args.min_speedup
                    if structured
                    else min(args.min_speedup, KERNEL_UNSTRUCTURED_FLOOR)
                )
                label = "structured" if structured else "unstructured"
                if row["speedup"] < floor:
                    failures.append(
                        f"kernel speedup {row['speedup']:.2f}x "
                        f"({spec.key_field}={key}, {label}) is below the "
                        f"{floor:.2f}x acceptance floor"
                    )
                else:
                    print(
                        f"acceptance floor: kernel speedup {row['speedup']:.2f}x "
                        f"({spec.key_field}={key}, {label}) >= {floor:.2f}x"
                    )
        else:
            print(
                "REGRESSION GATE: --min-speedup only applies to "
                "--kind fleet, --kind kernel or --kind fleet-processes"
            )
            return 1

    if failures:
        print("\nREGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nregression gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
