#!/usr/bin/env python
"""End-to-end smoke test of the observability HTTP surface.

Launches ``repro-radar serve-demo`` as a real subprocess with the process
scan pool, seeded chaos, an ephemeral ``--http-port`` and a trace
directory, then — while the demo lingers — exercises the surface the way
a scraper would:

1. poll ``/healthz`` until it answers 200 with ``status: ok|degraded``;
2. fetch ``/metrics`` and parse it with the repo's *strict* Prometheus
   text-format 0.0.4 parser (:func:`repro.telemetry.exposition.parse_prometheus`);
3. assert the metric families the dashboards key on are present:
   detection latency, budget utilization, tick duration and every
   ``fleet_*_total`` supervision counter;
4. cross-check ``/fault-stats`` (the engine's own JSON counters) against
   the ``fleet_*_total`` values on ``/metrics`` — the two surfaces must
   tell one story;
5. fetch ``/trace`` and verify every span's parent resolves (no orphans);
6. wait for the demo to exit cleanly and confirm the JSONL trace export
   landed on disk.

Exit status 0 on success; any failure prints the reason and exits 1.
Used by the ``observability-smoke`` CI job; runs locally the same way:

    python scripts/http_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.exposition import find_sample, parse_prometheus  # noqa: E402

#: Metric families that must be present and parseable on /metrics.
REQUIRED_FAMILIES = (
    "detection_latency_s",
    "budget_utilization",
    "tick_duration_s",
    "ticks_total",
    "fleet_events_total",
    "fleet_worker_restarts_total",
    "fleet_task_retries_total",
    "fleet_faults_injected_total",
)

#: /fault-stats keys cross-checked against their fleet_*_total counters.
CROSS_CHECKED_STATS = (
    "worker_restarts",
    "task_retries",
    "tasks_quarantined",
    "faults_injected",
    "worker_errors",
)

LINGER_S = 20.0


def fail(reason: str) -> None:
    print(f"SMOKE FAILED: {reason}", file=sys.stderr)
    sys.exit(1)


def fetch(url: str, timeout_s: float = 5.0) -> tuple:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.status, response.read().decode("utf-8")


def poll(url: str, deadline_s: float, what: str) -> str:
    last_error = "no attempt"
    while time.monotonic() < deadline_s:
        try:
            status, body = fetch(url)
            if status == 200:
                return body
            last_error = f"HTTP {status}"
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last_error = str(error)
        time.sleep(0.2)
    fail(f"{what} never became ready: {last_error}")


def main() -> int:
    trace_dir = Path(tempfile.mkdtemp(prefix="repro-http-smoke-"))
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve-demo",
        "--models",
        "3",
        "--processes",
        "2",
        "--chaos-seed",
        "20",
        "--passes",
        "24",
        "--budget-ms",
        "2.0",
        "--http-port",
        "0",
        "--trace-dir",
        str(trace_dir),
        "--report-every",
        "12",
        "--linger-s",
        f"{LINGER_S:g}",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if part
    )
    print("launching:", " ".join(command))
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    try:
        # The demo prints the ephemeral port before the first pass.
        url = None
        launch_deadline = time.monotonic() + 60.0
        for line in process.stdout:
            print(f"  demo | {line.rstrip()}")
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                url = match.group(1)
                break
            if time.monotonic() > launch_deadline:
                break
        if url is None:
            fail("serve-demo never announced its observability URL")
        # Don't let the demo block on a full stdout pipe while we scrape.
        deadline = time.monotonic() + 60.0
        poll(f"{url}/healthz", deadline, "/healthz")
        print("healthz: ok")

        # The fleet_* counters appear after the first tick's fault-stats
        # mirror; poll until the full family set is scrapeable.
        parsed = None
        missing = list(REQUIRED_FAMILIES)
        while time.monotonic() < deadline:
            body = poll(f"{url}/metrics", deadline, "/metrics")
            if not body:
                # An empty registry renders an empty exposition; the demo
                # has not finished its first tick yet.
                time.sleep(0.3)
                continue
            parsed = parse_prometheus(body)
            missing = [
                family
                for family in REQUIRED_FAMILIES
                if family not in parsed["families"]
            ]
            if not missing:
                break
            time.sleep(0.3)
        if parsed is None:
            fail("/metrics never served a non-empty exposition")
        if missing:
            fail(f"/metrics is missing families: {missing}")
        print(
            f"metrics: strict parse ok, {len(parsed['families'])} families, "
            f"all {len(REQUIRED_FAMILIES)} required present"
        )

        status, stats_body = fetch(f"{url}/fault-stats")
        if status != 200:
            fail(f"/fault-stats answered HTTP {status}")
        stats = json.loads(stats_body)
        for key in CROSS_CHECKED_STATS:
            engine_value = float(stats.get(key, 0))
            value = find_sample(parsed, f"fleet_{key}_total")
            if value is None:
                fail(f"/metrics has no sample for fleet_{key}_total")
            # The scrape may be one tick behind the live JSON counters.
            if value > engine_value:
                fail(
                    f"fleet_{key}_total={value} on /metrics exceeds "
                    f"the engine's own {key}={engine_value}"
                )
        print(f"fault-stats: consistent with /metrics ({dict(stats)})")

        status, trace_body = fetch(f"{url}/trace")
        if status != 200:
            fail(f"/trace answered HTTP {status}")
        spans = [json.loads(line) for line in trace_body.splitlines() if line]
        if not spans:
            fail("/trace returned no spans")
        # The live snapshot can include spans of a tick still in flight,
        # whose root engine.tick span has not finished (and therefore not
        # recorded) yet — only *complete* traces owe a resolvable parent
        # chain here.  The on-disk export is checked strictly below.
        complete = {
            span["trace_id"]
            for span in spans
            if span.get("name") == "engine.tick"
        }
        closed_spans = [
            span for span in spans if span.get("trace_id") in complete
        ]
        known = {span["span_id"] for span in closed_spans}
        orphans = [
            span
            for span in closed_spans
            if span.get("parent_id") and span["parent_id"] not in known
        ]
        if orphans:
            fail(
                f"/trace has {len(orphans)} orphaned span(s) in complete "
                f"traces: {sorted({span['name'] for span in orphans})}"
            )
        sites = {span.get("site") for span in spans}
        if not any(site and site.startswith("process-") for site in sites):
            fail(f"no worker-side spans in the trace (sites: {sorted(sites)})")
        print(
            f"trace: {len(spans)} spans ({len(complete)} complete ticks), "
            f"no orphans, sites {sorted(sites)}"
        )

        remainder = process.communicate(timeout=LINGER_S + 60.0)[0]
        for line in remainder.splitlines():
            print(f"  demo | {line}")
        if process.returncode != 0:
            fail(f"serve-demo exited with {process.returncode}")
        export = trace_dir / "trace.jsonl"
        if not export.exists() or not export.read_text().strip():
            fail(f"trace export missing or empty: {export}")
        # Strict orphan check on the finished export: every worker scan,
        # retry and quarantine span must chain back to its tick span.
        analysis = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "trace_analysis.py"),
                str(export),
                "--strict",
            ],
            capture_output=True,
            text=True,
        )
        print(analysis.stdout)
        if analysis.returncode != 0:
            fail(f"trace_analysis --strict failed on {export}")
        print(f"exit: clean, trace export at {export}")
        print("SMOKE PASSED")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
