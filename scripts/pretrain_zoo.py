#!/usr/bin/env python
"""Pre-train and cache the zoo models used by the experiments.

Run this once before the benchmark harnesses; afterwards every consumer
loads the cached weights from ``REPRO_CACHE_DIR`` (default
``~/.cache/repro_radar``).
"""

from __future__ import annotations

import argparse
import time

from repro.models.zoo import ModelZoo, available_setups


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--setups",
        nargs="*",
        default=["resnet20-cifar", "resnet18-imagenet"],
        help="Zoo setups to train (default: the two paper targets).",
    )
    parser.add_argument("--force", action="store_true", help="Retrain even if cached.")
    args = parser.parse_args()

    zoo = ModelZoo()
    for name in args.setups:
        if name not in available_setups():
            raise SystemExit(f"Unknown setup {name!r}; available: {available_setups()}")
        start = time.time()
        bundle = zoo.load(name, force_retrain=args.force)
        print(
            f"{name}: clean quantized accuracy {bundle.clean_accuracy:.3f} "
            f"(float accuracy {bundle.metadata.get('float_test_accuracy')}) "
            f"in {time.time() - start:.1f}s"
        )


if __name__ == "__main__":
    main()
