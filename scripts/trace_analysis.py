#!/usr/bin/env python
"""Analyze a flight-recorder JSONL trace export.

Reads the span stream ``serve-demo --trace-dir`` (or
``FlightRecorder.dump_jsonl``) produced and prints:

* a per-stage latency table — count, total, mean and nearest-rank
  p50/p95/p99 per span name (``engine.tick``, ``tick.plan``,
  ``scan.task``, ``worker.scan``, ...);
* a critical-path breakdown — each stage's share of total ``engine.tick``
  wall-clock, so "where does a tick go?" has a one-table answer;
* an orphan check — every span's ``parent_id`` must resolve within its
  trace (the cross-process propagation invariant).  ``--strict`` turns
  orphans into exit code 1.

The percentile formula is *identical* to
:meth:`repro.telemetry.metrics.RingHistogram.percentile` (nearest rank:
``ordered[max(ceil(q / 100 * n), 1) - 1]``), so the ``engine.tick`` p99
printed here matches the ``tick_duration_s`` quantile on ``/metrics``
sample-for-sample — as long as the recorder did not drop spans and the
histogram window did not wrap.

Stdlib only; no repo imports, so it can chew on a trace copied off a box
that never had the package installed.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

#: Stages that are children of one tick and sum (roughly) to its duration.
#: ``worker.scan`` is excluded: it overlaps ``scan.task`` (the coordinator
#: span that contains the worker's execution), so counting both would
#: double-bill the process path.
TICK_STAGES = (
    "tick.plan",
    "tick.assemble",
    "scan.kernel",
    "scan.task",
    "tick.verdict",
    "lifecycle.transition",
)


def load_spans(path: Path) -> List[dict]:
    spans: List[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"{path}:{line_number}: not valid JSON: {error}"
                )
            if not isinstance(span, dict) or "name" not in span:
                raise SystemExit(f"{path}:{line_number}: not a span object")
            spans.append(span)
    return spans


def nearest_rank(samples: Sequence[float], q: float) -> float:
    """The exact formula RingHistogram.percentile uses (NaN when empty)."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[rank - 1]


def stage_table(spans: Sequence[dict]) -> List[Dict[str, object]]:
    by_name: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        duration = span.get("duration_s")
        if isinstance(duration, (int, float)):
            by_name[span["name"]].append(float(duration))
    rows = []
    for name in sorted(by_name):
        samples = by_name[name]
        rows.append(
            {
                "stage": name,
                "count": len(samples),
                "total_ms": sum(samples) * 1e3,
                "mean_ms": sum(samples) / len(samples) * 1e3,
                "p50_ms": nearest_rank(samples, 50) * 1e3,
                "p95_ms": nearest_rank(samples, 95) * 1e3,
                "p99_ms": nearest_rank(samples, 99) * 1e3,
            }
        )
    rows.sort(key=lambda row: row["total_ms"], reverse=True)
    return rows


def critical_path(spans: Sequence[dict]) -> List[Dict[str, object]]:
    """Each stage's share of total ``engine.tick`` wall-clock."""
    tick_total = sum(
        float(span["duration_s"])
        for span in spans
        if span.get("name") == "engine.tick"
        and isinstance(span.get("duration_s"), (int, float))
    )
    if tick_total <= 0:
        return []
    rows = []
    accounted = 0.0
    for stage in TICK_STAGES:
        stage_total = sum(
            float(span["duration_s"])
            for span in spans
            if span.get("name") == stage
            and isinstance(span.get("duration_s"), (int, float))
        )
        if stage_total == 0:
            continue
        accounted += stage_total
        rows.append(
            {
                "stage": stage,
                "total_ms": stage_total * 1e3,
                "share_pct": stage_total / tick_total * 100.0,
            }
        )
    rows.append(
        {
            "stage": "(unattributed)",
            "total_ms": max(tick_total - accounted, 0.0) * 1e3,
            "share_pct": max(1.0 - accounted / tick_total, 0.0) * 100.0,
        }
    )
    return rows


def find_orphans(spans: Sequence[dict]) -> List[dict]:
    known = {
        (span.get("trace_id"), span.get("span_id"))
        for span in spans
        if span.get("span_id")
    }
    return [
        span
        for span in spans
        if span.get("parent_id")
        and (span.get("trace_id"), span.get("parent_id")) not in known
    ]


def render(rows: List[Dict[str, object]]) -> str:
    if not rows:
        return "(empty)"
    columns = list(rows[0])

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(fmt(row[column])) for row in rows))
        for column in columns
    }
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    for row in rows:
        lines.append(
            "  ".join(fmt(row[column]).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="JSONL trace export")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any span's parent does not resolve in the trace",
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.trace)
    if not spans:
        print(f"{args.trace}: no spans")
        return 0
    traces = {span.get("trace_id") for span in spans}
    print(f"{len(spans)} span(s) across {len(traces)} trace(s)\n")

    print("Per-stage latency (nearest-rank percentiles):")
    print(render(stage_table(spans)))

    path_rows = critical_path(spans)
    if path_rows:
        print("\nCritical path (share of engine.tick wall-clock):")
        print(render(path_rows))

    ticks = [
        float(span["duration_s"])
        for span in spans
        if span.get("name") == "engine.tick"
        and isinstance(span.get("duration_s"), (int, float))
    ]
    if ticks:
        print(
            f"\nengine.tick p99: {nearest_rank(ticks, 99) * 1e3:.4f} ms "
            f"over {len(ticks)} tick(s)"
        )

    orphans = find_orphans(spans)
    if orphans:
        names = ", ".join(
            sorted({str(span.get("name")) for span in orphans})
        )
        print(
            f"\nWARNING: {len(orphans)} orphaned span(s) "
            f"(parent_id unresolved): {names}"
        )
        if args.strict:
            return 1
    else:
        print("\nparent check: every span's parent resolves (no orphans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
