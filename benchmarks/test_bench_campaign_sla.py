"""EXP-CAMPAIGN — detection-latency SLA under scripted attack campaigns.

Not a paper artifact: this is the operational acceptance study behind the
telemetry subsystem (:mod:`repro.telemetry`).  The paper's claim is
run-time detection and recovery; this harness runs the committed
scenario-diverse campaign (:mod:`repro.experiments.campaign` — random
flips, PBFA, knowledgeable paired/low-bit attackers, burst and trickle
cadences) against engine-managed fleets with the full
detect → recover → reprotect lifecycle and asserts the SLA acceptance
bar: **every** scenario's injections are detected (nothing missed) with
**finite** p99 detection latency in both serving ticks and wall-clock.
``results/campaign_sla.json`` is the committed artifact;
``scripts/check_perf_regression.py --kind campaign`` gates CI on a fresh
run of it.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import emit
from repro.experiments.campaign import (
    default_scenarios,
    deterministic_rows,
    run_campaign,
)


@pytest.mark.benchmark(group="campaign-sla")
def test_campaign_reports_finite_detection_sla(benchmark):
    rows = run_campaign(seed=0)
    # The committed artifact keeps only machine-independent fields (tick
    # latencies, counts, structure) so reruns are byte-identical; the live
    # rows keep wall-clock for the assertions below and the printed table.
    emit(
        "Attack-campaign SLA — per-scenario detection latency percentiles "
        "(serving ticks) under the engine lifecycle",
        deterministic_rows(rows),
        filename="campaign_sla.json",
        deterministic=True,
    )

    scenarios = {scenario.name for scenario in default_scenarios()}
    assert {row["scenario"] for row in rows} == scenarios
    assert len(scenarios) >= 3, "the committed campaign must stay scenario-diverse"
    for row in rows:
        case = row["case"]
        assert row["missed"] == 0, f"{case}: injections went undetected"
        assert row["injections"] >= 1, f"{case}: scenario never attacked"
        for metric in ("p50", "p95", "p99"):
            assert math.isfinite(row[f"{metric}_detection_ticks"]), (
                f"{case}: {metric} detection latency (ticks) is not finite"
            )
            assert math.isfinite(row[f"{metric}_detection_ms"]), (
                f"{case}: {metric} detection latency (ms) is not finite"
            )
        # A detection is only an SLA if the loop closed behind it.
        assert math.isfinite(row["mean_reprotect_ms"]), (
            f"{case}: detected corruption was never re-signed"
        )
        # Detection can never precede the tick that scans the flip.
        assert row["p99_detection_ticks"] >= 1

    # Register the single-scenario run with pytest-benchmark for trends.
    scenario = default_scenarios()[0]
    benchmark.pedantic(
        lambda: run_campaign(scenarios=[scenario], seed=1), rounds=3, iterations=1
    )
