"""EXP-EXPO — inline (RADAR) vs periodic checking: exposure window of corrupted inferences.

Supports the paper's introduction (run-time attacks defeat periodic detection,
motivating a check embedded in every inference) by measuring how many batches
are served on corrupted weights before each scheme notices a 10-flip PBFA.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.common import generate_pbfa_profiles
from repro.experiments.exposure import exposure_study


@pytest.mark.benchmark(group="exposure")
def test_exposure_window(benchmark, resnet20_context):
    def run():
        profiles = generate_pbfa_profiles(resnet20_context, num_flips=10)
        return exposure_study(
            resnet20_context,
            profiles,
            group_size=8,
            check_every_values=(1, 4, 8),
            num_batches=10,
            batch_size=32,
            attack_at_batch=2,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Exposure window — batches served on corrupted weights before detection "
        "(inline RADAR vs periodic checking; paper's motivation for run-time checking)",
        rows,
        filename="exposure_window.json",
    )
    by_interval = {row["check_every"]: row for row in rows}
    # Inline checking never serves a corrupted batch; periodic checking does.
    assert by_interval[1]["exposed_batches_mean"] == 0
    assert by_interval[8]["exposed_batches_mean"] >= by_interval[4]["exposed_batches_mean"] >= 1
    # The batches inside the exposure window are served at (much) lower accuracy.
    assert by_interval[8]["exposed_accuracy"] <= by_interval[8]["served_accuracy"]
