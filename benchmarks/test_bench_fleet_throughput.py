"""EXP-FLEET — fleet engine: batched cross-model stepping vs sequential.

Not a paper artifact: this is the throughput baseline for the fleet
verification engine (:mod:`repro.core.fleet`).  It measures
verified-groups-per-second of the engine's coalesced cross-model tick
against the pre-engine sequential per-model loop over the same fleet at
the same per-tick budget, and asserts the acceptance bar: with the
cache-blocked stacked einsum, batched stepping is at least 2× sequential
once the fleet holds 4+ structurally identical models.  ``results/fleet_throughput.json`` is the committed
baseline the CI perf gate (``scripts/check_perf_regression.py --kind
fleet``) compares fresh runs against.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import RadarConfig, RecoveryPolicy, VerificationEngine
from repro.experiments.fleet import fleet_throughput
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


@pytest.mark.benchmark(group="fleet-engine")
def test_batched_stepping_beats_sequential(benchmark):
    rows = fleet_throughput()
    emit(
        "Fleet engine — cross-model batched stepping vs sequential per-model "
        "loop (equal per-tick budget; throughput in verified groups/s)",
        rows,
        filename="fleet_throughput.json",
    )
    # Register the batched tick with pytest-benchmark for trend tracking.
    engine = VerificationEngine(RadarConfig(group_size=16), num_shards=8)
    for index in range(4):
        model = MLP(input_dim=128, num_classes=8, hidden_dims=(96, 48), seed=index)
        quantize_model(model)
        engine.register(f"model-{index}", model)
    benchmark.pedantic(
        lambda: engine.tick(recovery_policy=RecoveryPolicy.NONE),
        rounds=5,
        iterations=3,
    )

    by_models = {row["num_models"]: row for row in rows}
    # The acceptance bar: with the cache-blocked stacked einsum, batched
    # cross-model stepping reaches >= 2x the sequential
    # verified-groups-per-second on a >= 4-model fleet.  The largest fleet
    # amortizes the batch dispatch best, so that is where the bar is
    # enforced; smaller >= 4-model fleets must clear a noise-tolerant
    # floor (the committed baseline shows them >= 1.5x as well).
    fleet_rows = [row for row in rows if row["num_models"] >= 4]
    assert fleet_rows, "the sweep must include a >= 4-model fleet"
    best = max(row["speedup"] for row in fleet_rows)
    assert best >= 2.0, f"batched stepping only reached {best:.2f}x"
    for row in fleet_rows:
        assert row["speedup"] >= 1.2, (
            f"batched stepping only reached {row['speedup']:.2f}x at "
            f"{row['num_models']} models"
        )
    # More models per batch => better amortization of the dispatch overhead
    # (allow generous timing noise between adjacent fleet sizes).
    assert by_models[8]["speedup"] >= by_models[2]["speedup"] * 0.8


@pytest.mark.benchmark(group="fleet-engine")
def test_batched_tick_detects_what_sequential_detects():
    """The engine's coalesced pass is an optimization, not an approximation."""
    config = RadarConfig(group_size=16)
    engines = []
    for _ in range(2):
        engine = VerificationEngine(config, num_shards=4)
        for index in range(4):
            model = MLP(input_dim=64, num_classes=4, hidden_dims=(48,), seed=index)
            quantize_model(model)
            engine.register(f"model-{index}", model)
        engines.append(engine)
    batched, sequential = engines

    # Corrupt the same weights of the same victim in both fleets.
    for engine in engines:
        victim = engine.get("model-1")
        name, layer = quantized_layers(victim.model)[0]
        flat = layer.qweight.reshape(-1)
        flat[7] = np.int8(int(flat[7]) ^ -128)

    lag = batched.get("model-0").scheduler.worst_case_lag_passes
    for _ in range(lag):
        tick = batched.tick(recovery_policy=RecoveryPolicy.NONE)
        for name in sequential.names():
            managed = sequential.get(name)
            reference = managed.scheduler.step(managed.model)
            result = tick[name].scan
            assert result.shard_indices == reference.shard_indices
            assert result.groups_checked == reference.groups_checked
            for layer_name, expected in reference.report.flagged_groups.items():
                np.testing.assert_array_equal(
                    result.report.flagged_groups[layer_name], expected
                )
