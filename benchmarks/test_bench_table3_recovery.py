"""EXP-T3 — Table III: accuracy recovery of the RADAR scheme."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, recovery_group_sizes_for
from repro.experiments.recovery import table3_recovery


@pytest.mark.benchmark(group="table3")
def test_table3_recovery(benchmark, contexts):
    def run():
        rows = []
        for name, context in contexts.items():
            rows.extend(
                table3_recovery(
                    context,
                    group_sizes=recovery_group_sizes_for(name),
                    num_flips_values=(5, 10),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Table III — accuracy recovery (paper: ResNet-20 18%→81% at G=8; "
        "ResNet-18 0.2%→66% at G=128; smaller G and interleaving recover more)",
        rows,
        columns=[
            "model", "num_flips", "group_size", "interleave",
            "clean_accuracy", "attacked_accuracy", "recovered_accuracy", "rounds",
        ],
        filename="table3_recovery.json",
    )
    for row in rows:
        regained = row["recovered_accuracy"] - row["attacked_accuracy"]
        destroyed = row["clean_accuracy"] - row["attacked_accuracy"]
        if row["interleave"]:
            # With interleaving (the paper's recommended configuration) the
            # zero-out recovery restores most of the destroyed accuracy.
            assert regained >= 0.5 * destroyed
        else:
            # Without interleaving recovery can miss cancelling pairs inside a
            # group; it must still never make the attacked model meaningfully worse.
            assert row["recovered_accuracy"] >= row["attacked_accuracy"] - 0.02
