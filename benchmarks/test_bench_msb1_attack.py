"""EXP-MSB1 — Section VIII: MSB-avoiding attacker and the 3-bit signature ablation."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.knowledgeable import msb1_attack_study


@pytest.mark.benchmark(group="msb1")
def test_msb1_attack_and_3bit_signature(benchmark, resnet20_context):
    def run():
        return msb1_attack_study(
            resnet20_context, num_flips_low_bit=30, group_size=16
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Section VIII — MSB-1-only attack (30 flips) vs the 2-bit and 3-bit signatures "
        "(paper: ~30 MSB-1 flips needed for the damage of 10 MSB flips; "
        "the 3-bit signature detects them)",
        rows,
        filename="msb1_attack.json",
    )
    by_bits = {row["signature_bits"]: row for row in rows}
    # The 3-bit signature detects MSB-1 flips far better than the 2-bit one.
    assert by_bits[3]["detected_mean"] > by_bits[2]["detected_mean"]
    assert by_bits[3]["detected_mean"] >= 0.8 * by_bits[3]["num_flips"]
