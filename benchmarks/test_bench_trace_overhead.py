"""EXP-TRACE — span-tracer overhead against an uninstrumented fleet tick.

Not a paper artifact: this is the cost ceiling for the observability
subsystem (:mod:`repro.telemetry.trace`).  Instrumentation that slows the
engine down is a protection regression in disguise — the scan budget the
tracer eats is scan budget the detector loses — so the budget is gated,
not aspirational:

* **disabled** (the default ``NULL_TRACER``): the per-tick cost of the
  instrumentation call sites themselves must stay under **2 %** of a
  fleet tick.  The call sites cannot be removed to measure a true
  baseline, so this row prices them directly: the measured per-call cost
  of a null ``span()``/``set_attr()``/``finish()`` round trip times the
  number of call sites a tick executes, as a fraction of the median tick.
* **enabled** (a :class:`SpanTracer` feeding a bounded
  :class:`FlightRecorder`): the end-to-end tick slowdown must stay under
  **10 %**, measured by running the same fleet with tracing on.

``results/trace_overhead.json`` is the committed baseline;
``scripts/check_perf_regression.py --kind trace-overhead`` re-enforces
both budgets per row on fresh runs (each row carries its own
``max_overhead_pct`` as a structural field, so the budget cannot drift
without touching the committed artifact).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.core import RadarConfig, RecoveryPolicy, VerificationEngine
from repro.models.small import MLP
from repro.quant.layers import quantize_model
from repro.telemetry.trace import NULL_TRACER, FlightRecorder, SpanTracer

#: The gated budgets (fractions of a fleet tick, in percent).
DISABLED_BUDGET_PCT = 2.0
ENABLED_BUDGET_PCT = 10.0

#: Paired A/B rounds.  The estimate is the *median of per-round
#: differences* (enabled tick minus the adjacent null tick): host drift
#: (CPU frequency, cache warmth) moves both ticks of a round together and
#: cancels in the difference, while comparing the two modes' separate
#: medians or mins lets that drift masquerade as tracer cost — at
#: single-digit-percent budgets, drift *is* the dominant error.
MEASURE_ROUNDS = 60


def _build_engine() -> VerificationEngine:
    # A full rotation per tick so the tick does real kernel work (~2 ms):
    # at sub-0.2 ms ticks the span constructions alone read as several
    # percent and the enabled row measures allocator noise instead of
    # tracer cost.
    engine = VerificationEngine(
        RadarConfig(group_size=16), num_shards=8, shards_per_pass=8
    )
    for index in range(8):
        model = MLP(
            input_dim=256, num_classes=16, hidden_dims=(256, 128), seed=index
        )
        quantize_model(model)
        engine.register(f"model-{index}", model)
    return engine




def _null_site_cost_s(calls: int = 200_000) -> float:
    """Per-call cost of one instrumentation site with tracing disabled."""
    tracer = NULL_TRACER
    started = time.perf_counter()
    for _ in range(calls):
        span = tracer.span("bench", parent=None)
        span.set_attr("key", 1)
        span.finish()
    return (time.perf_counter() - started) / calls


@pytest.mark.benchmark(group="fleet-engine")
def test_tracing_overhead_stays_inside_budget():
    # One engine, A/B interleaved per round: measuring the two modes in
    # separate blocks lets host drift (CPU frequency, cache warmth)
    # masquerade as tracer cost, which at single-digit-percent budgets is
    # the whole signal.  Toggling ``engine.tracer`` between ticks is safe —
    # it is a plain attribute the tick reads once.
    recorder = FlightRecorder(capacity=16384)
    tracer = SpanTracer(recorder=recorder)
    engine = _build_engine()
    baseline_samples = []
    differences = []
    try:
        for _ in range(3):  # warm-up: first ticks pay allocator setup
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
        # One traced warm-up tick counts the spans a steady-state tick emits.
        engine.tracer = tracer
        engine.tick(recovery_policy=RecoveryPolicy.NONE)
        spans_per_tick = len(recorder)
        for _ in range(MEASURE_ROUNDS):
            engine.tracer = NULL_TRACER
            started = time.perf_counter()
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            null_tick_s = time.perf_counter() - started
            engine.tracer = tracer
            started = time.perf_counter()
            engine.tick(recovery_policy=RecoveryPolicy.NONE)
            traced_tick_s = time.perf_counter() - started
            baseline_samples.append(null_tick_s)
            differences.append(traced_tick_s - null_tick_s)
    finally:
        engine.close()
    baseline_samples.sort()
    differences.sort()
    baseline_tick_s = baseline_samples[MEASURE_ROUNDS // 2]
    tracer_cost_s = max(differences[MEASURE_ROUNDS // 2], 0.0)
    enabled_tick_s = baseline_tick_s + tracer_cost_s

    enabled_pct = tracer_cost_s / baseline_tick_s * 100.0
    # Disabled: the call sites are compiled in; price them directly.
    disabled_pct = (
        _null_site_cost_s() * spans_per_tick / baseline_tick_s * 100.0
    )

    rows = [
        {
            "mode": "disabled",
            "overhead_pct": disabled_pct,
            "max_overhead_pct": DISABLED_BUDGET_PCT,
            "spans_per_tick": spans_per_tick,
            "tick_ms": baseline_tick_s * 1e3,
        },
        {
            "mode": "enabled",
            "overhead_pct": enabled_pct,
            "max_overhead_pct": ENABLED_BUDGET_PCT,
            "spans_per_tick": spans_per_tick,
            "tick_ms": enabled_tick_s * 1e3,
        },
    ]
    emit(
        "Span-tracer overhead vs an uninstrumented fleet tick "
        "(4 models, 8 shards; budgets gated by CI)",
        rows,
        filename="trace_overhead.json",
    )

    assert spans_per_tick >= 5, (
        f"a traced tick emitted only {spans_per_tick} span(s); the "
        "plan/assemble/kernel/verdict instrumentation went missing"
    )
    assert disabled_pct < DISABLED_BUDGET_PCT, (
        f"disabled tracing costs {disabled_pct:.3f}% of a tick "
        f"(budget {DISABLED_BUDGET_PCT}%)"
    )
    assert enabled_pct < ENABLED_BUDGET_PCT, (
        f"enabled tracing costs {enabled_pct:.3f}% of a tick "
        f"(budget {ENABLED_BUDGET_PCT}%)"
    )
