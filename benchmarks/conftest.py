"""Shared fixtures and helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper and prints
its rows (via ``repro.experiments.reporting.render_table``) so the output
can be compared against the paper and pasted into EXPERIMENTS.md.

Knobs (environment variables):

* ``REPRO_EXPERIMENT_ROUNDS`` — attack rounds per configuration
  (default 3 here; the paper uses 100).
* ``REPRO_BENCH_FULL`` — set to ``0`` to skip the ResNet-18 variants of the
  model-sweep benchmarks (they are several times slower than the ResNet-20
  ones); both models run by default, as in the paper.
* ``REPRO_CACHE_DIR`` — where pretrained weights and cached attack
  profiles live.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments import reporting

os.environ.setdefault("REPRO_EXPERIMENT_ROUNDS", "3")

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_models():
    """Model setups exercised by the sweep benchmarks."""
    models = ["resnet20-cifar"]
    if os.environ.get("REPRO_BENCH_FULL", "1") != "0":
        models.append("resnet18-imagenet")
    return models


def emit(
    title: str, rows, columns=None, filename: str = None, deterministic: bool = False
) -> None:
    """Print a table and persist it under ``results/``.

    ``deterministic=True`` is for artifacts that must be byte-identical
    across reruns (the campaign JSONs): rows should already be projected
    onto machine-independent fields, and serialization is fixed too.
    """
    text = reporting.render_table(rows, columns=columns, title=title)
    print("\n" + text)
    if filename:
        reporting.save_results(
            rows, RESULTS_DIR / filename, deterministic=deterministic
        )


@pytest.fixture(scope="session")
def resnet20_context() -> ExperimentContext:
    """The pretrained ResNet-20 (CIFAR-10-like) experiment context."""
    return ExperimentContext.load("resnet20-cifar")


@pytest.fixture(scope="session")
def resnet18_context() -> ExperimentContext:
    """The pretrained ResNet-18 (ImageNet-like) experiment context."""
    return ExperimentContext.load("resnet18-imagenet")


@pytest.fixture(scope="session")
def contexts(resnet20_context, resnet18_context):
    """Contexts for all models selected by ``bench_models()``."""
    available = {
        "resnet20-cifar": resnet20_context,
        "resnet18-imagenet": resnet18_context,
    }
    return {name: available[name] for name in bench_models()}


def group_sizes_for(model_name: str):
    """The paper's group-size sweep for each model."""
    if "resnet18" in model_name:
        return (64, 128, 256, 512, 1024)
    return (4, 8, 16, 32, 64)


def recovery_group_sizes_for(model_name: str):
    """The Table III group sizes for each model."""
    if "resnet18" in model_name:
        return (128, 256, 512)
    return (8, 16, 32)
