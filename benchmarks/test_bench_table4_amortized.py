"""EXP-T4A — Table IV re-priced for amortized (budget-driven) checking.

Not a paper artifact: the paper's Table IV charges every batch a full
signature scan.  This harness prices the amortized alternative — one shard
of ``num_shards`` per batch — with the same analytic timing model, and
asserts the core claim of the budget-driven planner: at an equal
detection-lag bound, the per-pass overhead is strictly below Table IV's
full-scan overhead, and it shrinks with the shard count until checking
hides inside the paper's 1–5 % overhead envelope.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.overhead import table4_amortized


@pytest.mark.benchmark(group="table4")
def test_table4_amortized(benchmark):
    rows = benchmark.pedantic(table4_amortized, rounds=1, iterations=1)
    emit(
        "Table IV (amortized) — per-pass RADAR overhead when each batch "
        "verifies one of num_shards shards (lag bound = num_shards batches)",
        rows,
        filename="table4_amortized.json",
    )
    by_key = {(row["model"], row["num_shards"]): row for row in rows}
    for row in rows:
        # The acceptance bar: every configuration beats the stop-the-world
        # scan it replaces, strictly.  Since the zero-copy kernel landed this
        # includes the single-shard degenerate case: narrow accumulation
        # discounts the per-weight checksum term, so even a full-model
        # background pass is priced below the serial inline check.
        assert row["per_pass_overhead_s"] < row["full_scan_overhead_s"]
        if row["num_shards"] == 1:
            # ...but never by more than the narrow-accumulation factor (the
            # per-group binarize/compare term is not discounted, and padded
            # tail groups are billed in full).
            assert row["per_pass_overhead_s"] >= (
                row["full_scan_overhead_s"] / row["narrow_speedup"]
            )
    # Amortization is roughly proportional: 8 shards cut the per-pass cost
    # by ~8x (exactly ceil(total/8)/total of the full slice price).
    for model in ("resnet20", "resnet18"):
        full = by_key[(model, 1)]["per_pass_overhead_s"]
        eighth = by_key[(model, 8)]["per_pass_overhead_s"]
        assert eighth == pytest.approx(full / 8, rel=0.01)
    # At 8+ shards both models check within the paper's overhead envelope.
    assert by_key[("resnet20", 8)]["per_pass_overhead_percent"] < 1.0
    assert by_key[("resnet18", 8)]["per_pass_overhead_percent"] < 1.0
