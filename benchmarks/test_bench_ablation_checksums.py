"""EXP-ABL2 — RADAR's 2-bit signature vs classic full-width checksum families.

Supports the paper's Section IV.A argument (and the Maxino & Koopman citation)
that a binarized addition checksum is sufficient for the PBFA error model:
the wide checksums detect no more of the attack while storing 4-16x as many
bits per group.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import checksum_family_comparison
from repro.experiments.common import generate_pbfa_profiles


@pytest.mark.benchmark(group="ablation")
def test_ablation_checksum_families(benchmark, resnet20_context):
    def run():
        profiles = generate_pbfa_profiles(resnet20_context, num_flips=10)
        return checksum_family_comparison(
            resnet20_context,
            profiles,
            group_size=8,
            families=("xor", "addition", "fletcher", "adler"),
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — RADAR 2-bit signature vs classic checksum families at G=8 "
        "(paper's argument: the binarized addition checksum is enough for PBFA)",
        rows,
        filename="ablation_checksum_families.json",
    )

    schemes = {row["scheme"]: row for row in rows}
    radar = schemes["radar-2bit"]
    # RADAR stores the least and detects (at least nearly) as much as every wide checksum.
    for name, row in schemes.items():
        if name == "radar-2bit":
            continue
        assert radar["storage_kb"] < row["storage_kb"]
        assert radar["detected_mean"] >= row["detected_mean"] - 1.0
