"""EXP-SCHED — amortized scan scheduler: per-pass latency vs detection lag.

Not a paper artifact: this is the repo's first performance baseline for the
run-time subsystem.  It measures the cost of the stop-the-world full scan
(legacy per-layer path and the fused vectorized path) against the amortized
:class:`~repro.core.scheduler.ScanScheduler` per-pass cost for several shard
counts, together with the detection-lag (exposure window) each shard count
implies, and verifies that one full rotation detects exactly what a full
scan does.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import ModelProtector, RadarConfig
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers

SHARD_COUNTS = (4, 8, 16)
TIMING_REPEATS = 5
TIMING_ITERATIONS = 3


def _best_of(fn, repeats: int = TIMING_REPEATS, iterations: int = TIMING_ITERATIONS) -> float:
    """Minimum per-call seconds over ``repeats`` timed blocks."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


@pytest.fixture(scope="module")
def protected_model():
    """A quantized MLP big enough (~500k weights) for stable scan timings."""
    model = MLP(input_dim=784, num_classes=10, hidden_dims=(512, 256), seed=99)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=32))
    protector.protect(model)
    return model, protector


@pytest.mark.benchmark(group="scan-scheduler")
def test_amortized_pass_is_cheaper_than_full_scan(protected_model, benchmark):
    model, protector = protected_model
    full_s = _best_of(lambda: protector.scan(model))
    fused_s = _best_of(lambda: protector.scan_fused(model))

    rows = []
    for num_shards in SHARD_COUNTS:
        scheduler = protector.scheduler(num_shards=num_shards)
        pass_s = _best_of(lambda: scheduler.step(model))
        rows.append(
            {
                "num_shards": num_shards,
                "groups": scheduler.total_groups,
                "groups_per_pass": scheduler.total_groups // num_shards,
                "full_scan_ms": full_s * 1e3,
                "fused_scan_ms": fused_s * 1e3,
                "per_pass_ms": pass_s * 1e3,
                "speedup_vs_full": full_s / pass_s,
                "speedup_vs_fused": fused_s / pass_s,
                "worst_case_lag_passes": scheduler.worst_case_lag_passes,
            }
        )

    # Register the amortized step with pytest-benchmark for trend tracking.
    scheduler = protector.scheduler(num_shards=8)
    benchmark.pedantic(lambda: scheduler.step(model), rounds=5, iterations=3)

    emit(
        "Scan scheduler — full-scan vs amortized per-pass latency "
        "(per-pass cost must amortize; detection lag = one rotation)",
        rows,
        filename="scan_scheduler.json",
    )
    by_shards = {row["num_shards"]: row for row in rows}
    # The acceptance bar: with >= 8 shards one amortized pass costs at least
    # 3x less than a stop-the-world scan (either full-scan implementation).
    assert by_shards[8]["speedup_vs_full"] >= 3.0
    assert by_shards[16]["speedup_vs_fused"] >= 3.0
    # More shards => cheaper passes (allowing generous timing noise).
    assert by_shards[16]["per_pass_ms"] <= by_shards[4]["per_pass_ms"] * 1.5


@pytest.mark.benchmark(group="scan-scheduler")
def test_rotation_detection_matches_full_scan(protected_model):
    model, protector = protected_model
    # Corrupt a handful of weights spread across layers.
    rng = np.random.default_rng(7)
    for name, layer in quantized_layers(model):
        flat = layer.qweight.reshape(-1)
        index = int(rng.integers(flat.size))
        flat[index] = np.int8(int(flat[index]) ^ -128)
    try:
        reference = protector.scan(model)
        assert reference.attack_detected
        for num_shards in SHARD_COUNTS:
            scheduler = protector.scheduler(num_shards=num_shards)
            rotation = scheduler.run_rotation(model)
            assert set(rotation.flagged_groups) == set(reference.flagged_groups)
            for layer_name, expected in reference.flagged_groups.items():
                np.testing.assert_array_equal(
                    rotation.flagged_groups[layer_name], expected
                )
    finally:
        # Undo the flips (module-scoped fixture; keep the model clean).
        rng = np.random.default_rng(7)
        for name, layer in quantized_layers(model):
            flat = layer.qweight.reshape(-1)
            index = int(rng.integers(flat.size))
            flat[index] = np.int8(int(flat[index]) ^ -128)


@pytest.mark.benchmark(group="scan-scheduler")
def test_detection_lag_tradeoff(protected_model):
    """Exposure window: a flip in the worst-placed shard waits one rotation."""
    model, protector = protected_model
    rows = []
    for num_shards in SHARD_COUNTS:
        scheduler = protector.scheduler(num_shards=num_shards)
        # Flip a weight inside the shard scanned *last* in the rotation.
        last_rows = scheduler.shard_rows(num_shards - 1)
        fused = protector.store.fused()
        groups_by_layer = fused.rows_to_layer_groups(last_rows[-1:])
        layer_name = next(name for name, groups in groups_by_layer.items() if groups.size)
        entry = protector.store.layer(layer_name)
        member = int(entry.layout.members_of(int(groups_by_layer[layer_name][0]))[0])
        flat = dict(quantized_layers(model))[layer_name].qweight.reshape(-1)
        flat[member] = np.int8(int(flat[member]) ^ -128)
        try:
            lag = None
            for attempt in range(scheduler.worst_case_lag_passes):
                if scheduler.step(model).attack_detected:
                    lag = attempt + 1
                    break
            assert lag is not None, "flip must be caught within one rotation"
            rows.append(
                {
                    "num_shards": num_shards,
                    "detection_lag_passes": lag,
                    "worst_case_lag_passes": scheduler.worst_case_lag_passes,
                }
            )
            assert lag <= scheduler.worst_case_lag_passes
        finally:
            flat[member] = np.int8(int(flat[member]) ^ -128)
    emit(
        "Scan scheduler — detection lag for a flip in the last-scanned shard",
        rows,
        filename="scan_scheduler_lag.json",
    )
    # Worst-placed flip waits the full rotation under round-robin.
    assert all(row["detection_lag_passes"] == row["worst_case_lag_passes"] for row in rows)
