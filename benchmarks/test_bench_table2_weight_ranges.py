"""EXP-T2 — Table II: value ranges of the weights PBFA targets."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.characterization import table2_weight_ranges
from repro.experiments.common import generate_pbfa_profiles


@pytest.mark.benchmark(group="table2")
def test_table2_weight_ranges(benchmark, contexts):
    def run():
        profiles_by_model = {
            name: generate_pbfa_profiles(context, num_flips=10)
            for name, context in contexts.items()
        }
        return table2_weight_ranges(profiles_by_model)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Table II — targeted-weight value ranges (paper: most targets are small weights in (-32, 32))",
        rows,
        filename="table2_weight_ranges.json",
    )
    for row in rows:
        assert row["small_weight_fraction"] > 0.5
