"""EXP-F4 — Fig. 4: detected bit flips (out of 10) vs group size, ± interleaving."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, group_sizes_for
from repro.experiments.common import generate_pbfa_profiles
from repro.experiments.detection import fig4_detection_sweep
from repro.experiments.plotting import detection_chart


@pytest.mark.benchmark(group="fig4")
def test_fig4_detection_sweep(benchmark, contexts):
    def run():
        rows = []
        for name, context in contexts.items():
            profiles = generate_pbfa_profiles(context, num_flips=10)
            rows.extend(fig4_detection_sweep(context, profiles, group_sizes_for(name)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Fig. 4 — average detected flips out of 10 "
        "(paper: ~10/10 for small G; interleaving keeps >9.5/10 even for large G)",
        rows,
        filename="fig4_detection.json",
    )
    for name in contexts:
        print(detection_chart(rows, name))
    for row in rows:
        # With interleaving RADAR detects nearly all PBFA flips (paper: >9.5/10);
        # without it the detection degrades for large groups but still catches
        # the majority.  The thresholds are loosened relative to the paper's
        # 100-round averages because the default run uses only a few rounds.
        if row["interleave"]:
            assert row["detected_mean"] >= 8.0
        else:
            assert row["detected_mean"] >= 3.0
    # Interleaving never hurts detection on average (paper's claim).
    for name in contexts:
        for group_size in group_sizes_for(name):
            pair = {
                row["interleave"]: row["detected_mean"]
                for row in rows
                if row["model"] == name and row["group_size"] == group_size
            }
            assert pair[True] >= pair[False] - 1.0
