"""EXP-F2 — Fig. 2: proportion of groups holding multiple vulnerable bits vs G."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, group_sizes_for
from repro.experiments.characterization import fig2_multibit_proportion
from repro.experiments.common import generate_pbfa_profiles


@pytest.mark.benchmark(group="fig2")
def test_fig2_multibit_proportion(benchmark, contexts):
    def run():
        rows = []
        for name, context in contexts.items():
            profiles = generate_pbfa_profiles(context, num_flips=10)
            rows.extend(
                fig2_multibit_proportion(context, profiles, group_sizes_for(name))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Fig. 2 — proportion of attacked groups containing multiple flips "
        "(paper: low for small G, grows super-linearly with G)",
        rows,
        filename="fig2_multibit_proportion.json",
    )
    # Shape checks.  The proportion is a probability, and enlarging the groups
    # never makes the *largest* observed clustering smaller than the value at
    # the smallest group size (the paper's "grows with G" trend).  The strict
    # per-step monotonicity of the paper's 100-round averages is not asserted:
    # with the default handful of rounds the estimate is too noisy for that.
    for name in contexts:
        series = [row["multi_flip_proportion"] for row in rows if row["model"] == name]
        assert all(0.0 <= value <= 1.0 for value in series)
        assert max(series) >= series[0] - 1e-9
