"""EXP-T5 — Table V: RADAR vs CRC time and storage overhead."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.overhead import table5_crc_comparison


@pytest.mark.benchmark(group="table5")
def test_table5_crc_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: table5_crc_comparison(include_hamming=True), rounds=1, iterations=1
    )
    emit(
        "Table V — overhead comparison with CRC (paper: CRC-13 costs 0.317s / 36.4KB on "
        "ResNet-18 vs RADAR's 0.060s / 5.6KB)",
        rows,
        filename="table5_crc_comparison.json",
    )
    for model in ("resnet20", "resnet18"):
        model_rows = {row["scheme"]: row for row in rows if row["model"] == model}
        radar = model_rows["RADAR"]
        crc = next(row for scheme, row in model_rows.items() if scheme.startswith("CRC"))
        # RADAR wins on both axes by a wide margin.
        assert radar["overhead_s"] * 3 < crc["overhead_s"]
        assert radar["storage_kb"] * 3 < crc["storage_kb"]
