"""EXP-T1 — Table I: PBFA flip-position statistics (MSB 0→1 / 1→0 / others)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.characterization import table1_bit_positions
from repro.experiments.common import generate_pbfa_profiles


@pytest.mark.benchmark(group="table1")
def test_table1_bit_positions(benchmark, contexts):
    def run():
        profiles_by_model = {
            name: generate_pbfa_profiles(context, num_flips=10)
            for name, context in contexts.items()
        }
        return table1_bit_positions(profiles_by_model)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Table I — PBFA flips per bit position (paper: MSB targeted ~100% of the time)",
        rows,
        filename="table1_bit_positions.json",
    )
    for row in rows:
        # The paper's headline observation: PBFA overwhelmingly targets the MSB.
        assert row["msb_fraction"] > 0.8
