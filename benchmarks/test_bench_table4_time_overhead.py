"""EXP-T4 — Table IV: inference-time overhead of RADAR (gem5-style system model)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.overhead import table4_time_overhead


@pytest.mark.benchmark(group="table4")
def test_table4_time_overhead(benchmark):
    rows = benchmark.pedantic(table4_time_overhead, rounds=1, iterations=1)
    emit(
        "Table IV — inference time with RADAR embedded "
        "(paper: 66.3→69.8 ms ResNet-20, 3.268→3.328 s ResNet-18; overhead <2% for ResNet-18)",
        rows,
        filename="table4_time_overhead.json",
    )
    by_model = {row["model"]: row for row in rows}
    # ResNet-18 overhead stays below 2-3% even with interleaving; ResNet-20 below ~6%.
    assert by_model["resnet18"]["overhead_interleave_percent"] < 3.0
    assert by_model["resnet20"]["overhead_interleave_percent"] < 7.0
    # Measured baselines fall near the paper's gem5 numbers (within 25%).
    for row in rows:
        assert abs(row["baseline_s"] - row["paper_baseline_s"]) / row["paper_baseline_s"] < 0.25
