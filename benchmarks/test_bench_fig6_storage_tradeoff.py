"""EXP-F6 — Fig. 6: recovered accuracy vs signature-storage overhead."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, group_sizes_for
from repro.experiments.plotting import tradeoff_chart
from repro.experiments.tradeoff import best_tradeoff_point, fig6_storage_tradeoff


@pytest.mark.benchmark(group="fig6")
def test_fig6_storage_tradeoff(benchmark, contexts):
    def run():
        rows = []
        for name, context in contexts.items():
            rows.extend(
                fig6_storage_tradeoff(context, group_sizes=group_sizes_for(name), num_flips=10)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Fig. 6 — recovered accuracy vs signature storage under a 10-flip PBFA "
        "(paper: knee at G=8 / 8.2KB for ResNet-20 and G=512 / 5.6KB for ResNet-18)",
        rows,
        columns=[
            "model", "group_size", "storage_kb",
            "attacked_accuracy", "recovered_accuracy", "clean_accuracy",
        ],
        filename="fig6_storage_tradeoff.json",
    )
    for name in contexts:
        model_rows = [row for row in rows if row["model"] == name]
        print(tradeoff_chart(model_rows, name))
        # Storage shrinks monotonically as G grows (2 bits per group).
        storages = [row["storage_kb"] for row in model_rows]
        assert storages == sorted(storages, reverse=True)
        best = best_tradeoff_point(model_rows)
        print(f"best trade-off for {name}: G={best['group_size']} ({best['storage_kb']:.1f} KB)")
