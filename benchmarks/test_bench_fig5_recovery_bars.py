"""EXP-F5 — Fig. 5: ResNet-18 recovery bar chart (N_BF = 5 and 10)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.plotting import recovery_bars
from repro.experiments.recovery import fig5_recovery_bars


@pytest.mark.benchmark(group="fig5")
def test_fig5_recovery_bars(benchmark, resnet18_context):
    def run():
        return fig5_recovery_bars(
            resnet18_context, group_sizes=(128, 256, 512), num_flips_values=(5, 10)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Fig. 5 — ResNet-18 accuracy bars: unprotected vs RADAR-recovered at G=128/256/512 "
        "(paper: 0.18% unprotected vs 60-66% recovered for N_BF=10)",
        rows,
        filename="fig5_recovery_bars.json",
    )
    for num_flips in (5, 10):
        print(recovery_bars(rows, resnet18_context.model_name, num_flips))
    for num_flips in (5, 10):
        unprotected = [
            row["accuracy"] for row in rows
            if row["num_flips"] == num_flips and row["series"] == "unprotected"
        ][0]
        recovered = [
            row["accuracy"] for row in rows
            if row["num_flips"] == num_flips and row["series"] != "unprotected"
        ]
        # Every RADAR configuration beats the unprotected accuracy.
        assert min(recovered) >= unprotected
