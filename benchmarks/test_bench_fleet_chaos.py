"""EXP-CHAOS — fault-tolerance acceptance of the supervised scan pool.

Not a paper artifact: this is the robustness acceptance study behind the
self-healing process pool (:mod:`repro.core.procpool`).  Each committed
scenario replays the same attack timeline through a chaos fleet — whose
worker processes execute under a seeded deterministic
:class:`~repro.core.procpool.FaultPlan` (kills, delays, dropped and
malformed results, poison tasks) — and an inline single-process oracle,
and asserts the acceptance bar: every tick's verdicts **bit-identical**
to the oracle, the injected attack detected with nothing missed, every
planned fault actually injected, and the pool self-healed without the
engine degrading.  ``results/fleet_chaos.json`` is the committed
artifact; ``scripts/check_perf_regression.py --kind campaign`` gates CI
on a fresh run of it.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import emit
from repro.core.signature import shared_memory_available
from repro.experiments.fleet import DEFAULT_CHAOS_SCENARIOS, fleet_chaos_campaign

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


@pytest.mark.benchmark(group="fleet-chaos")
def test_chaos_campaign_is_fault_transparent(benchmark):
    rows = fleet_chaos_campaign(seed=0)
    # Every field is a deterministic function of the seeded fault plans
    # (counts and structure, no wall-clock), so reruns are byte-identical.
    emit(
        "Fleet chaos campaign — verdict parity and pool self-healing under "
        "seeded fault injection",
        rows,
        filename="fleet_chaos.json",
        deterministic=True,
    )

    assert {row["scenario"] for row in rows} == {
        f"chaos-{name}" for name, _ in DEFAULT_CHAOS_SCENARIOS
    }
    assert len(rows) >= 4, "the committed chaos campaign must stay scenario-diverse"
    for row in rows:
        case = row["case"]
        assert row["oracle_match"], f"{case}: verdicts diverged from the oracle"
        assert row["missed"] == 0, f"{case}: the injected attack went undetected"
        assert row["pool_recovered"], f"{case}: the pool did not self-heal"
        assert row["faults_planned"] >= 1, f"{case}: scenario planned no faults"
        assert row["faults_injected"] == row["faults_planned"], (
            f"{case}: {row['faults_injected']} of {row['faults_planned']} "
            "planned faults actually fired"
        )
        assert math.isfinite(row["p99_detection_ticks"]), (
            f"{case}: detection latency is not finite"
        )
        assert row["degraded_ticks"] == 0, (
            f"{case}: supervision let the engine degrade"
        )
    # The poison scenario must exercise coordinator quarantine — the path
    # that keeps verdicts flowing when a task kills every worker it meets.
    poison = next(row for row in rows if row["scenario"] == "chaos-poison-task")
    assert poison["tasks_quarantined"] >= 1

    # Register one scenario with pytest-benchmark for trend tracking.
    benchmark.pedantic(
        lambda: fleet_chaos_campaign(
            scenarios=[DEFAULT_CHAOS_SCENARIOS[0]], ticks=4, seed=1
        ),
        rounds=3,
        iterations=1,
    )
