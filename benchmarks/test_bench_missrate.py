"""EXP-MISS — Section VI.B: miss rate of random MSB flips on a 512-weight layer.

The paper runs 1e6 rounds and reports miss rates of about 1e-5 (G=32) and
1e-6 (G=16).  The default here is 1e5 rounds (override with
``REPRO_MISSRATE_ROUNDS``) — enough to confirm the miss rate is at or
below the 1e-4 level, i.e. that whole attacks essentially never slip
through undetected.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import emit
from repro.experiments.detection import missrate_study


@pytest.mark.benchmark(group="missrate")
def test_missrate_study(benchmark):
    rounds = int(os.environ.get("REPRO_MISSRATE_ROUNDS", "100000"))

    def run():
        return missrate_study(
            num_weights=512, group_sizes=(16, 32), flips_per_round=10, rounds=rounds
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Section VI.B — probability that 10 random MSB flips escape detection "
        "(paper: 1e-6 at G=16, 1e-5 at G=32 over 1e6 rounds)",
        rows,
        filename="missrate.json",
    )
    for row in rows:
        assert row["miss_rate"] <= 1e-3
