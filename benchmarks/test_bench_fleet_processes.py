"""EXP-FLEET-PROC — multi-process fleet scanning over shared-memory planes.

Not a paper artifact: this is the scaling baseline for the fleet engine's
process-pool execution mode (:mod:`repro.core.procpool`).  The 16-model
full-scan sweep runs at 1 (inline baseline), 2 and 4 scan processes;
``results/fleet_processes.json`` is the committed artifact the CI perf
gate (``scripts/check_perf_regression.py --kind fleet-processes``)
compares fresh runs against, enforcing the >= 2.5x-at-4-processes
acceptance floor on runners that expose the cores.

Speedup floors are *environment-guarded* here: a 1-core container cannot
show a multi-process speedup no matter how good the engine is, so the
floor assertions only fire when the recorded ``available_cpus`` covers the
process count.  The correctness assertions (bit-exact oracle match, zero
weight bytes copied per steady-state tick) are unconditional — they hold
on any host.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import (
    RadarConfig,
    RecoveryPolicy,
    ScanPolicy,
    VerificationEngine,
    shared_memory_available,
)
from repro.experiments.fleet import fleet_process_scaling
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory is unavailable on this platform",
)


@pytest.mark.benchmark(group="fleet-processes")
def test_process_scaling_sweep(benchmark):
    rows = fleet_process_scaling()
    emit(
        "Fleet engine — multi-process scanning over shared-memory weight "
        "planes (16-model full-scan sweep; throughput in verified groups/s)",
        rows,
        filename="fleet_processes.json",
    )
    engine = VerificationEngine(
        RadarConfig(group_size=16),
        num_shards=1,
        policy=ScanPolicy.FULL,
        processes=2,
    )
    for index in range(4):
        model = MLP(input_dim=128, num_classes=8, hidden_dims=(96, 48), seed=index)
        quantize_model(model)
        engine.register(f"model-{index}", model)
    with engine:
        benchmark.pedantic(
            lambda: engine.tick(recovery_policy=RecoveryPolicy.NONE),
            rounds=5,
            iterations=3,
        )

    by_processes = {row["processes"]: row for row in rows}
    assert set(by_processes) >= {1, 2, 4}
    for row in rows:
        # Unconditional correctness: bit-exact vs the sequential oracle and
        # zero weight bytes copied once the plane is published.
        assert row["oracle_match"], f"oracle mismatch at {row['processes']} processes"
        assert row["weight_bytes_copied_per_tick"] == 0, (
            f"{row['weight_bytes_copied_per_tick']} weight bytes copied per "
            f"tick at {row['processes']} processes"
        )
        assert row["groups_per_tick"] == rows[0]["groups_per_tick"]
    # Environment-guarded speedup floors: only meaningful where the host
    # exposes the parallelism (CI runners do; dev containers often do not).
    cpus = rows[0]["available_cpus"]
    if cpus >= 4:
        assert by_processes[4]["speedup_vs_single"] >= 2.5, (
            f"4-process scanning only reached "
            f"{by_processes[4]['speedup_vs_single']:.2f}x on a {cpus}-CPU host"
        )
    if cpus >= 2:
        assert by_processes[2]["speedup_vs_single"] >= 1.2, (
            f"2-process scanning only reached "
            f"{by_processes[2]['speedup_vs_single']:.2f}x on a {cpus}-CPU host"
        )


@pytest.mark.benchmark(group="fleet-processes")
def test_process_tick_detects_what_sequential_detects():
    """The process pool is an execution lane, not an approximation."""
    config = RadarConfig(group_size=16)
    engines = []
    for processes in (3, 1):
        engine = VerificationEngine(config, num_shards=4, processes=processes)
        for index in range(4):
            model = MLP(input_dim=64, num_classes=4, hidden_dims=(48,), seed=index)
            quantize_model(model)
            engine.register(f"model-{index}", model)
        engines.append(engine)
    pooled, sequential = engines

    for engine in engines:
        victim = engine.get("model-1")
        name, layer = quantized_layers(victim.model)[0]
        flat = layer.qweight.reshape(-1)
        flat[7] = np.int8(int(flat[7]) ^ -128)

    try:
        lag = pooled.get("model-0").scheduler.worst_case_lag_passes
        for _ in range(lag):
            tick = pooled.tick(recovery_policy=RecoveryPolicy.NONE)
            for name in sequential.names():
                managed = sequential.get(name)
                reference = managed.scheduler.step(managed.model)
                result = tick[name].scan
                assert result.shard_indices == reference.shard_indices
                assert result.groups_checked == reference.groups_checked
                for layer_name, expected in reference.report.flagged_groups.items():
                    np.testing.assert_array_equal(
                        result.report.flagged_groups[layer_name], expected
                    )
    finally:
        pooled.close()
        sequential.close()
