"""EXP-ABL1 — ablation of RADAR's design choices (signature width, masking, recovery policy).

Not a table in the paper, but DESIGN.md calls out the three design choices
Section IV/V argues for; this bench quantifies each on the ResNet-20 target
using the same cached PBFA profiles as the Table III / Fig. 4 benches.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import (
    masking_ablation,
    recovery_policy_ablation,
    signature_bits_ablation,
)
from repro.experiments.common import generate_pbfa_profiles


@pytest.mark.benchmark(group="ablation")
def test_ablation_design_choices(benchmark, resnet20_context):
    def run():
        profiles = generate_pbfa_profiles(resnet20_context, num_flips=10)
        return {
            "signature": signature_bits_ablation(resnet20_context, profiles, group_size=8),
            "masking": masking_ablation(resnet20_context, profiles, group_size=8),
            "policy": recovery_policy_ablation(resnet20_context, profiles, group_size=8),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — signature width (1/2/3 bits) at G=8",
        results["signature"],
        filename="ablation_signature_bits.json",
    )
    emit(
        "Ablation — secret-key masking on/off at G=8 (plain PBFA; no regression expected)",
        results["masking"],
        filename="ablation_masking.json",
    )
    emit(
        "Ablation — recovery policy (none / zero / reload) at G=8",
        results["policy"],
        filename="ablation_recovery_policy.json",
    )

    # Storage grows with the signature width while PBFA detection stays high.
    signature_rows = {row["signature_bits"]: row for row in results["signature"]}
    assert signature_rows[1]["storage_kb"] < signature_rows[2]["storage_kb"] < signature_rows[3]["storage_kb"]
    assert signature_rows[2]["detected_mean"] >= 8.0

    # Masking does not hurt detection of the standard attack.
    masking_rows = {row["masking"]: row for row in results["masking"]}
    assert masking_rows[True]["detected_mean"] >= masking_rows[False]["detected_mean"] - 1.0

    # Policy ordering: reload >= zero >= none.
    policy_rows = {row["policy"]: row for row in results["policy"]}
    assert policy_rows["reload"]["recovered_accuracy"] >= policy_rows["zero"]["recovered_accuracy"] - 0.02
    assert policy_rows["zero"]["recovered_accuracy"] >= policy_rows["none"]["recovered_accuracy"] - 0.02
