"""EXP-CAMPAIGN-MATRIX — the adversary × cadence × defense matrix.

Not a paper artifact: this is the adaptive-threat acceptance study behind
the jittered planner (:class:`repro.core.planner.JitteredPlanner`).  The
deterministic smoke subset (:func:`repro.experiments.campaign.smoke_matrix`)
runs schedule-aware adversaries (:mod:`repro.attacks.adaptive`) against
fixed and randomized scan rotations and asserts the two headline margins:

* **the exploit is real** — the rotation tracker's mean detection latency
  against the fixed round-robin rotation is strictly worse than a
  schedule-blind random attacker's, and its p99 *saturates* the
  scheduler's declared worst-case bound (the attacker owns the bound);
* **the defense restores slack** — under the jittered planner every cell's
  p99 stays finite and at or under its (doubled) declared bound, the
  tracker's p99 lands strictly *inside* it, and the matched-bound dense
  variant holds the original bound outright.

``results/campaign_matrix.json`` is the committed artifact (wall-clock
fields stripped so reruns are byte-identical);
``scripts/check_perf_regression.py --kind campaign`` re-checks the margins
against a fresh run in CI.  The full offline sweep is
``repro-radar sla-report --matrix --full``.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import emit
from repro.experiments.campaign import (
    deterministic_rows,
    matrix_summary,
    run_matrix,
    smoke_matrix,
)


@pytest.mark.benchmark(group="campaign-matrix")
def test_matrix_pins_adaptive_margins(benchmark):
    cells = smoke_matrix()
    rows = run_matrix(cells, seed=0)
    emit(
        "Campaign matrix (smoke) — adversary × cadence × defense detection "
        "latency with declared worst-case bounds",
        deterministic_rows(rows),
        filename="campaign_matrix.json",
        deterministic=True,
    )

    assert len(rows) == len(cells), "every cell must produce exactly one SLA row"
    by_cell = {(row["adversary"], row["cadence"], row["defense"]): row for row in rows}
    for row in rows:
        case = row["case"]
        assert row["missed"] == 0, f"{case}: injections went undetected"
        assert row["injections"] >= 1, f"{case}: cell never attacked"
        assert math.isfinite(row["p99_detection_ticks"]), (
            f"{case}: p99 detection latency is not finite"
        )
        bound = row["p99_bound_ticks"]
        if bound is not None:
            assert row["p99_detection_ticks"] <= bound, (
                f"{case}: p99 {row['p99_detection_ticks']} exceeds the "
                f"declared worst-case bound {bound}"
            )

    trickle = "trickle@3+6x4"
    random_fixed = by_cell[("random", trickle, "fixed-rr")]
    tracker_fixed = by_cell[("rotation", trickle, "fixed-rr")]
    tracker_jittered = by_cell[("rotation", trickle, "jittered")]
    tracker_dense = by_cell[("rotation", trickle, "jittered-dense")]
    oracle_jittered = by_cell[("oracle", trickle, "jittered")]

    # The exploit: strictly worse than blind, saturating the bound.
    assert tracker_fixed["mean_detection_ticks"] > random_fixed["mean_detection_ticks"]
    assert tracker_fixed["p99_detection_ticks"] == tracker_fixed["p99_bound_ticks"]

    # The defense: strict slack inside the jittered bound, and a strictly
    # smaller bound fraction than the fixed rotation forfeits (1.0).
    assert tracker_jittered["p99_detection_ticks"] < tracker_jittered["p99_bound_ticks"]
    assert (
        tracker_jittered["p99_detection_ticks"] / tracker_jittered["p99_bound_ticks"]
        < tracker_fixed["p99_detection_ticks"] / tracker_fixed["p99_bound_ticks"]
    )
    # Matched-bound deployment: same declared bound as fixed-rr, yet the
    # tracker can no longer saturate it.
    assert tracker_dense["p99_bound_ticks"] == tracker_fixed["p99_bound_ticks"]
    assert tracker_dense["p99_detection_ticks"] < tracker_dense["p99_bound_ticks"]
    # Even total planner knowledge stays within the declared bound.
    assert oracle_jittered["p99_detection_ticks"] <= oracle_jittered["p99_bound_ticks"]

    summary = matrix_summary(rows)
    assert summary, "matrix_summary must digest the smoke cells"
    print()
    for entry in summary:
        print(entry)

    # Register one representative cell with pytest-benchmark for trends.
    benchmark.pedantic(
        lambda: run_matrix([cells[2]], seed=1), rounds=3, iterations=1
    )
