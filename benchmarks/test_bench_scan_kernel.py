"""EXP-KERNEL — zero-copy scan kernel vs the PR-3 per-layer path.

Not a paper artifact: this is the performance baseline for the fused scan
kernel of :class:`~repro.core.signature.FusedSignatures` (one int8 gather
out of a global weight plane + one narrow-accumulation einsum, adopted
models scanned with zero weight copies).  It measures verified-groups/s
against the retained ``reference=True`` per-layer path — on a full scan
and on a scheduler shard slice — and asserts the acceptance bar: the
kernel is at least 4× the reference path on a structured full scan and 5×
on the sliced scan.  Timing takes the best of ``ATTEMPTS`` full study
reruns per mode (the same defensive posture ``fleet_processes`` uses):
one noisy block on a loaded CI host should not fail the floor.
``results/scan_kernel.json`` is the committed baseline the CI perf gate
(``scripts/check_perf_regression.py --kind kernel``) compares fresh runs
against.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import ModelProtector, RadarConfig
from repro.experiments.kernel import scan_kernel_throughput
from repro.models.resnet_cifar import resnet20
from repro.models.small import MLP
from repro.quant.layers import quantize_model, quantized_layers


#: Floors asserted per mode when the plane is structured (the ResNet-20
#: workload always is); an unstructured plane would ride the general
#: gather and only owes the pre-structure 2x bar.
STRUCTURED_FLOORS = {"full": 4.0, "slice": 5.0}
UNSTRUCTURED_FLOOR = 2.0
#: Best-of-N study attempts, mirroring test_bench_fleet_throughput: each
#: attempt already interleaves reference/kernel blocks, so a handful of
#: attempts suffices to shake off scheduler noise.
ATTEMPTS = 3


def _best_rows() -> list:
    """Best-speedup row per mode across ``ATTEMPTS`` study runs."""
    best = {}
    for _ in range(ATTEMPTS):
        for row in scan_kernel_throughput():
            incumbent = best.get(row["mode"])
            if incumbent is None or row["speedup"] > incumbent["speedup"]:
                best[row["mode"]] = row
    return [best[mode] for mode in ("full", "slice")]


@pytest.mark.benchmark(group="scan-kernel")
def test_kernel_beats_reference_path(benchmark):
    rows = _best_rows()
    emit(
        "Scan kernel — fused gather plane + narrow accumulation vs the "
        "PR-3 per-layer path (verified groups/s; full scan and one "
        "scheduler shard slice)",
        rows,
        filename="scan_kernel.json",
    )
    # Register the kernel full scan with pytest-benchmark for trend tracking.
    model = resnet20(seed=7)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=8))
    protector.protect(model)
    fused = protector.store.fused()
    fused.adopt(dict(quantized_layers(model)))
    benchmark.pedantic(lambda: fused.mismatched_rows(model), rounds=5, iterations=3)

    # The acceptance bar: on a structured plane the block-slice gather owes
    # >= 4x verified-groups/s full-scan and >= 5x on the scheduler slice;
    # an unstructured plane keeps the original 2x kernel-vs-reference bar.
    by_mode = {row["mode"]: row for row in rows}
    assert set(by_mode) == {"full", "slice"}
    for mode, row in by_mode.items():
        floor = (
            STRUCTURED_FLOORS[mode] if row["structured"] else UNSTRUCTURED_FLOOR
        )
        assert row["speedup"] >= floor, (
            f"kernel only reached {row['speedup']:.2f}x on the {mode} scan "
            f"(floor {floor}x, structured={row['structured']})"
        )


@pytest.mark.benchmark(group="scan-kernel")
def test_kernel_is_bit_exact_against_reference():
    """The kernel is an optimization, not an approximation."""
    model = MLP(input_dim=128, num_classes=8, hidden_dims=(96, 48), seed=3)
    quantize_model(model)
    protector = ModelProtector(RadarConfig(group_size=16))
    protector.protect(model)
    fused = protector.store.fused()
    rng = np.random.default_rng(11)
    for _, layer in quantized_layers(model):
        flat = layer.qweight.reshape(-1)
        index = int(rng.integers(flat.size))
        flat[index] = np.int8(int(flat[index]) ^ -128)
    for rows in (
        None,
        np.empty(0, dtype=np.int64),
        np.arange(fused.total_groups, dtype=np.int64),
        rng.choice(fused.total_groups, size=fused.total_groups // 3, replace=False),
    ):
        np.testing.assert_array_equal(
            fused.mismatched_rows(model, rows),
            fused.mismatched_rows(model, rows, reference=True),
        )
        np.testing.assert_array_equal(
            fused.group_sums(model, rows),
            fused.group_sums(model, rows, reference=True),
        )
