"""EXP-F7 — Fig. 7: detection and recovery against the paired-flip knowledgeable attacker."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.knowledgeable import fig7_knowledgeable_sweep, generate_paired_profiles


@pytest.mark.benchmark(group="fig7")
def test_fig7_knowledgeable(benchmark, resnet20_context):
    def run():
        profiles = generate_paired_profiles(
            resnet20_context, num_flips=10, assumed_group_size=64
        )
        return fig7_knowledgeable_sweep(
            resnet20_context, profiles, group_sizes=(4, 8, 16, 32, 64)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Fig. 7 — ResNet-20 vs a paired-flip attacker (20 flips) "
        "(paper: detection collapses without interleaving, stays high with it)",
        rows,
        columns=[
            "group_size", "interleave", "num_flips", "detected_mean",
            "attacked_accuracy", "recovered_accuracy", "clean_accuracy",
        ],
        filename="fig7_knowledgeable.json",
    )
    # The paper's two claims for the paired-flip attacker:
    # (a) without interleaving the detection collapses once the attacker's
    #     assumed group matches the defender's (G = 64 here), while
    #     interleaving keeps the detection ratio high;
    # (b) with interleaving and a small group size the recovered accuracy
    #     stays close to (or above) the contiguous layout's.
    by_key = {(row["group_size"], row["interleave"]): row for row in rows}
    largest = max(row["group_size"] for row in rows)
    smallest = min(row["group_size"] for row in rows)
    assert by_key[(largest, True)]["detected_mean"] >= by_key[(largest, False)]["detected_mean"]
    assert by_key[(largest, True)]["detected_mean"] >= 0.6 * by_key[(largest, True)]["num_flips"]
    assert (
        by_key[(smallest, True)]["recovered_accuracy"]
        >= by_key[(smallest, False)]["recovered_accuracy"] - 0.05
    )
